// Differential tests for the decoded-instruction cache and batched-tick
// dispatch: the decoded fast loop must be bit-identical to the plain
// fetch/decode/execute interpreter — digests, cycles, instruction counts,
// x-warnings and traces — across compute, branch, memory and IRQ-driven
// kernels, and self-modifying code must be re-decoded before the next fetch.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string_view>

#include "asm/assembler.h"
#include "asm/linker.h"
#include "isa/opcodes.h"
#include "sim/bus.h"
#include "sim/machine.h"
#include "sim/timing.h"
#include "sim/trace.h"
#include "soc/intc.h"
#include "soc/irq.h"
#include "soc/timer.h"
#include "support/diagnostics.h"
#include "support/vfs.h"

namespace {

using namespace advm::sim;
using advm::soc::InterruptController;
using advm::soc::IrqLines;
using advm::soc::Timer;
using advm::support::DiagnosticEngine;
using advm::support::VirtualFileSystem;

// The four bench kernels (mirrored by bench/bench_sim_core.cpp), sized down
// so the differential suite stays fast.

constexpr std::string_view kComputeKernel =
    "_main:\n"
    " MOV d0, 500\n"
    " MOV d1, 0x1234\n"
    " MOV d2, 0\n"
    ".loop:\n"
    " ADD d2, d2, d1\n"
    " XOR d1, d1, d2\n"
    " SHL d3, d1, 3\n"
    " SHR d4, d2, 2\n"
    " ADD d2, d2, d3\n"
    " SUB d2, d2, d4\n"
    " MUL d5, d1, 3\n"
    " ADD d2, d2, d5\n"
    " SUB d0, d0, 1\n"
    " JNZ .loop\n"
    " HALT\n";

constexpr std::string_view kBranchKernel =
    "_main:\n"
    " MOV d0, 400\n"
    " MOV d1, 0\n"
    " MOV d2, 0\n"
    ".loop:\n"
    " AND d3, d0, 1\n"
    " CMP d3, 0\n"
    " JEQ .even\n"
    " ADD d1, d1, 3\n"
    " JMP .next\n"
    ".even:\n"
    " ADD d2, d2, 5\n"
    ".next:\n"
    " SUB d0, d0, 1\n"
    " JNZ .loop\n"
    " HALT\n";

constexpr std::string_view kMemoryKernel =
    "_main:\n"
    " MOV d0, 64\n"
    " LEA a0, 0x4000\n"
    " MOV d1, 0x11\n"
    ".fill:\n"
    " STORE [a0], d1\n"
    " ADD a0, a0, 4\n"
    " ADD d1, d1, 7\n"
    " SUB d0, d0, 1\n"
    " JNZ .fill\n"
    " MOV d0, 64\n"
    " LEA a0, 0x4000\n"
    " MOV d2, 0\n"
    ".sum:\n"
    " LOAD d3, [a0]\n"
    " ADD d2, d2, d3\n"
    " ADD a0, a0, 4\n"
    " SUB d0, d0, 1\n"
    " JNZ .sum\n"
    " HALT\n";

// Timer at 0x20000, INTC at 0x30000 (see IrqRig below); line 3 -> vector 19.
constexpr std::string_view kIrqKernel =
    "_main:\n"
    " LOAD d0, handler\n"
    " STORE [0x8000 + 4 * 19], d0\n"
    " MOV d0, 60\n"
    " STORE [0x20004], d0\n"
    " MOV d0, 7\n"
    " STORE [0x20008], d0\n"
    " MOV d0, 8\n"
    " STORE [0x30004], d0\n"
    " MOV d5, 0\n"
    " MOV d6, 0\n"
    " ENABLE\n"
    ".wait:\n"
    " ADD d6, d6, 1\n"
    " CMP d5, 8\n"
    " JLT .wait\n"
    " HALT\n"
    "handler:\n"
    " ADD d5, d5, 1\n"
    " MOV d0, 8\n"
    " STORE [0x30000], d0\n"
    " MOV d0, 1\n"
    " STORE [0x2000C], d0\n"
    " RETI\n";

/// Everything the decoded loop promises to keep bit-identical.
struct Outcome {
  RunResult result;
  std::uint64_t digest = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t x_warnings = 0;
};

/// A fresh flat-RAM board per arm — plus, optionally, a timer + interrupt
/// controller so the IRQ kernel exercises the batched-tick horizon.
class Rig {
 public:
  static constexpr std::uint32_t kRamSize = 0x10000;
  static constexpr std::uint32_t kVtBase = 0x8000;
  static constexpr std::uint32_t kStackTop = 0x10000;
  static constexpr std::uint32_t kTimerBase = 0x20000;
  static constexpr std::uint32_t kIntcBase = 0x30000;

  explicit Rig(bool with_irq_fabric, MachineConfig config = {}) {
    bus_.map(0x0, std::make_unique<Ram>("ram", kRamSize));
    if (with_irq_fabric) {
      bus_.map(kTimerBase,
               std::make_unique<Timer>(/*prescale=*/4, irqs_, /*line=*/3));
      auto intc = std::make_unique<InterruptController>(irqs_);
      intc_ = intc.get();
      bus_.map(kIntcBase, std::move(intc));
    }
    machine_ = std::make_unique<Machine>(bus_, timing_, config);
    if (intc_ != nullptr) machine_->set_irq_source(intc_);
  }

  void load(std::string_view source) {
    VirtualFileSystem vfs;
    DiagnosticEngine diags;
    advm::assembler::Assembler assembler(vfs, diags, {});
    auto obj = assembler.assemble_source("/kernel.asm", source);
    ASSERT_TRUE(obj.has_value()) << diags.to_string();
    std::vector<advm::assembler::ObjectFile> objects{obj->object};
    advm::assembler::LinkOptions lo;
    lo.code_base = 0x1000;
    lo.data_base = 0x4000;
    auto image = advm::assembler::link(objects, lo, diags);
    ASSERT_TRUE(image.has_value()) << diags.to_string();
    for (const auto& seg : image->segments) {
      ASSERT_TRUE(bus_.load_bytes(seg.base, seg.bytes));
    }
    machine_->reset(image->entry, kStackTop, kVtBase);
  }

  Outcome run(std::uint64_t max = 100000) {
    Outcome o;
    o.result = machine_->run(max);
    o.digest = machine_->state_digest();
    o.cycles = machine_->cycles();
    o.instructions = machine_->instructions();
    o.x_warnings = machine_->x_warnings();
    return o;
  }

  Machine& machine() { return *machine_; }

 private:
  IrqLines irqs_;
  Bus bus_;
  FunctionalTiming timing_;
  InterruptController* intc_ = nullptr;
  std::unique_ptr<Machine> machine_;
};

void expect_identical(const Outcome& decoded, const Outcome& interp) {
  EXPECT_EQ(decoded.result.reason, interp.result.reason);
  EXPECT_EQ(decoded.result.instructions, interp.result.instructions);
  EXPECT_EQ(decoded.result.cycles, interp.result.cycles);
  EXPECT_EQ(decoded.result.stop_pc, interp.result.stop_pc);
  EXPECT_EQ(decoded.result.fault_vector, interp.result.fault_vector);
  EXPECT_EQ(decoded.digest, interp.digest);
  EXPECT_EQ(decoded.cycles, interp.cycles);
  EXPECT_EQ(decoded.instructions, interp.instructions);
  EXPECT_EQ(decoded.x_warnings, interp.x_warnings);
}

class DifferentialKernel : public ::testing::Test {
 protected:
  void run_both(std::string_view source, bool with_irq_fabric,
                MachineConfig config = {}) {
    Rig decoded(with_irq_fabric, config);
    decoded.machine().set_decode_cache_enabled(true);
    decoded.load(source);
    if (::testing::Test::HasFatalFailure()) return;
    Rig interp(with_irq_fabric, config);
    interp.machine().set_decode_cache_enabled(false);
    interp.load(source);
    if (::testing::Test::HasFatalFailure()) return;
    Outcome d = decoded.run();
    Outcome i = interp.run();
    EXPECT_EQ(d.result.reason, StopReason::Halted);
    expect_identical(d, i);
  }
};

TEST_F(DifferentialKernel, Compute) { run_both(kComputeKernel, false); }
TEST_F(DifferentialKernel, Branch) { run_both(kBranchKernel, false); }
TEST_F(DifferentialKernel, Memory) { run_both(kMemoryKernel, false); }
TEST_F(DifferentialKernel, IrqDriven) { run_both(kIrqKernel, true); }

TEST_F(DifferentialKernel, XWarningsMatchUnderXChecking) {
  MachineConfig config;
  config.x_check_registers = true;
  // d4/d5/d9 never written: three x-warnings on both arms.
  constexpr std::string_view source =
      "_main:\n"
      " ADD d1, d4, d5\n"
      " MOV d2, d9\n"
      " HALT\n";
  Rig decoded(false, config);
  decoded.machine().set_decode_cache_enabled(true);
  decoded.load(source);
  Rig interp(false, config);
  interp.machine().set_decode_cache_enabled(false);
  interp.load(source);
  Outcome d = decoded.run();
  Outcome i = interp.run();
  EXPECT_EQ(d.x_warnings, 3u);
  expect_identical(d, i);
}

TEST_F(DifferentialKernel, TracesByteIdenticalWithSinkAttached) {
  // A trace sink forces per-instruction ticking on both arms; every event
  // stream field must match, not just the end state.
  for (std::string_view source :
       {kComputeKernel, kBranchKernel, kMemoryKernel}) {
    Rig decoded(false);
    decoded.machine().set_decode_cache_enabled(true);
    RecordingTrace dt;
    decoded.machine().set_trace(&dt);
    decoded.load(source);
    Rig interp(false);
    interp.machine().set_decode_cache_enabled(false);
    RecordingTrace it;
    interp.machine().set_trace(&it);
    interp.load(source);
    Outcome d = decoded.run();
    Outcome i = interp.run();
    expect_identical(d, i);
    ASSERT_EQ(dt.instrs.size(), it.instrs.size());
    for (std::size_t k = 0; k < dt.instrs.size(); ++k) {
      EXPECT_EQ(dt.instrs[k].cycle, it.instrs[k].cycle);
      EXPECT_EQ(dt.instrs[k].pc, it.instrs[k].pc);
      EXPECT_EQ(dt.instrs[k].instr, it.instrs[k].instr);
    }
    ASSERT_EQ(dt.mems.size(), it.mems.size());
    for (std::size_t k = 0; k < dt.mems.size(); ++k) {
      EXPECT_EQ(dt.mems[k].cycle, it.mems[k].cycle);
      EXPECT_EQ(dt.mems[k].addr, it.mems[k].addr);
      EXPECT_EQ(dt.mems[k].value, it.mems[k].value);
      EXPECT_EQ(dt.mems[k].is_write, it.mems[k].is_write);
    }
    ASSERT_EQ(dt.traps.size(), it.traps.size());
    for (std::size_t k = 0; k < dt.traps.size(); ++k) {
      EXPECT_EQ(dt.traps[k].cycle, it.traps[k].cycle);
      EXPECT_EQ(dt.traps[k].vector, it.traps[k].vector);
    }
  }
}

TEST_F(DifferentialKernel, UnhandledTrapOutcomeMatches) {
  constexpr std::string_view source =
      "_main:\n"
      " MOV d0, 7\n"
      " DIV d1, d0, 0\n"
      " HALT\n";
  Rig decoded(false);
  decoded.machine().set_decode_cache_enabled(true);
  decoded.load(source);
  Rig interp(false);
  interp.machine().set_decode_cache_enabled(false);
  interp.load(source);
  Outcome d = decoded.run();
  Outcome i = interp.run();
  EXPECT_EQ(d.result.reason, StopReason::UnhandledTrap);
  ASSERT_TRUE(d.result.fault_vector.has_value());
  EXPECT_EQ(*d.result.fault_vector, TrapVectors::kDivideByZero);
  expect_identical(d, i);
}

TEST_F(DifferentialKernel, CycleLimitOutcomeMatches) {
  constexpr std::string_view source = "_main:\n.spin: JMP .spin\n";
  Rig decoded(false);
  decoded.machine().set_decode_cache_enabled(true);
  decoded.load(source);
  Rig interp(false);
  interp.machine().set_decode_cache_enabled(false);
  interp.load(source);
  Outcome d = decoded.run(777);
  Outcome i = interp.run(777);
  EXPECT_EQ(d.result.reason, StopReason::CycleLimit);
  EXPECT_EQ(d.result.instructions, 777u);
  expect_identical(d, i);
}

// ------------------------------------------------- self-modifying code ----

TEST(SelfModifyingCode, StoreIntoCodeInvalidatesDecodedPage) {
  // Patches the imm32 of "MOV d6, 100" (bytes 8-11 of the instruction at
  // `stamp`) between two calls; the generation bump from Ram::write32 must
  // force a re-decode before the second call fetches the slot.
  constexpr std::string_view source =
      "_main:\n"
      " CALL stamp\n"
      " MOV d7, d6\n"
      " MOV d1, 200\n"
      " STORE [stamp + 8], d1\n"
      " CALL stamp\n"
      " HALT\n"
      "stamp:\n"
      " MOV d6, 100\n"
      " RETURN\n";
  Rig rig(false);
  rig.machine().set_decode_cache_enabled(true);
  rig.load(source);
  Outcome o = rig.run();
  EXPECT_EQ(o.result.reason, StopReason::Halted);
  EXPECT_EQ(rig.machine().d(7), 100u) << "first call must see the old imm";
  EXPECT_EQ(rig.machine().d(6), 200u) << "second call must see the patch";
  EXPECT_GT(rig.machine().decode_cache().invalidations(), 0u);

  // And the interpreter arm agrees on the architectural outcome.
  Rig interp(false);
  interp.machine().set_decode_cache_enabled(false);
  interp.load(source);
  Outcome i = interp.run();
  expect_identical(o, i);
}

TEST(SelfModifyingCode, HotLoopDecodesEachSlotOnce) {
  Rig rig(false);
  rig.machine().set_decode_cache_enabled(true);
  rig.load(kComputeKernel);
  Outcome o = rig.run();
  EXPECT_EQ(o.result.reason, StopReason::Halted);
  EXPECT_GT(o.instructions, 4000u);
  // 14 static instructions; each decoded once despite thousands of fetches.
  EXPECT_LE(rig.machine().decode_cache().decodes(), 16u);
}

// ----------------------------------------------------- bus + device unit ---

TEST(BusWindows, SpanningRead32FaultClearsOutParam) {
  Bus bus;
  bus.map(0x1000, std::make_unique<Ram>("tiny", 2));
  std::uint32_t v = 0xDEADBEEF;
  EXPECT_FALSE(bus.read32(0x1000, v));  // bytes 2-3 unmapped mid-assembly
  EXPECT_EQ(v, 0u) << "a failed spanning read must not leak partial bytes";
}

TEST(BusWindows, TickAllOnlyVisitsTickingDevices) {
  IrqLines irqs;
  Bus bus;
  bus.map(0x0, std::make_unique<Ram>("ram", 0x100));
  bus.map(0x1000, std::make_unique<Rom>("rom", 0x100));
  EXPECT_EQ(bus.ticking_count(), 0u);
  bus.map(0x2000, std::make_unique<Timer>(1, irqs, 0));
  EXPECT_EQ(bus.ticking_count(), 1u);
}

TEST(BusWindows, DirectBytesExposureMatchesSideEffectFreedom) {
  Ram plain("plain", 16);
  Ram tracked("tracked", 16, /*track_init=*/true);
  Rom rom("rom", 16);
  EXPECT_NE(plain.direct_bytes(), nullptr);
  EXPECT_EQ(tracked.direct_bytes(), nullptr)
      << "uninit-read counting is a read side effect";
  EXPECT_NE(rom.direct_bytes(), nullptr);
}

TEST(BusWindows, GenerationBumpsOnEveryContentChange) {
  Ram ram("ram", 16);
  const auto g0 = ram.generation();
  ASSERT_TRUE(ram.write8(0, 1));
  EXPECT_GT(ram.generation(), g0);
  const auto g1 = ram.generation();
  ASSERT_TRUE(ram.write32(4, 0x01020304));
  EXPECT_GT(ram.generation(), g1);
  const auto g2 = ram.generation();
  ram.reset();
  EXPECT_GT(ram.generation(), g2);

  Rom rom("rom", 16);
  const auto r0 = rom.generation();
  rom.program(0, {1, 2, 3});
  EXPECT_GT(rom.generation(), r0);
}

TEST(EventHorizon, TimerReportsCyclesToNextPossibleIrq) {
  IrqLines irqs;
  Timer t(/*prescale=*/4, irqs, 3);
  EXPECT_EQ(t.next_event_horizon(), kNoEventHorizon) << "disabled timer";

  auto write = [&t](std::uint32_t reg, std::uint32_t value) {
    ASSERT_TRUE(t.write32(reg, value));
  };
  write(Timer::kCompareOffset, 5);
  write(Timer::kCtrlOffset, Timer::kCtrlEnable);
  EXPECT_EQ(t.next_event_horizon(), kNoEventHorizon)
      << "match without IRQ_ENABLE only flips STATUS";
  write(Timer::kCtrlOffset, Timer::kCtrlEnable | Timer::kCtrlIrqEnable);
  EXPECT_EQ(t.next_event_horizon(), 20u);  // 5 steps * prescale 4
  t.tick(3);
  EXPECT_EQ(t.next_event_horizon(), 17u);  // 3 cycles of residue
  t.tick(1);                               // count -> 1, residue 0
  EXPECT_EQ(t.next_event_horizon(), 16u);
  // The horizon is never later than the raise itself.
  t.tick(16);
  EXPECT_TRUE(irqs.pending() & (1u << 3));
}

TEST(EventHorizon, BusTakesMinimumAcrossTickingDevices) {
  IrqLines irqs;
  Bus bus;
  bus.map(0x0, std::make_unique<Ram>("ram", 0x100));
  EXPECT_EQ(bus.next_event_horizon(), kNoEventHorizon);
  auto timer = std::make_unique<Timer>(1, irqs, 0);
  Timer* t = timer.get();
  bus.map(0x1000, std::move(timer));
  ASSERT_TRUE(t->write32(Timer::kCompareOffset, 9));
  ASSERT_TRUE(t->write32(Timer::kCtrlOffset,
                         Timer::kCtrlEnable | Timer::kCtrlIrqEnable));
  EXPECT_EQ(bus.next_event_horizon(), 9u);
}

TEST(HandlerTable, DenseIndexMatchesOpcodeTableOrder) {
  const auto& table = advm::isa::opcode_table();
  ASSERT_EQ(table.size(), advm::isa::kNumOpcodes);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(advm::isa::opcode_handler_index(table[i].op), i)
        << advm::isa::to_string(table[i].op);
    EXPECT_EQ(advm::isa::handler_index_for_byte(
                  static_cast<std::uint8_t>(table[i].op)),
              i);
  }
  EXPECT_EQ(advm::isa::handler_index_for_byte(0xEE),
            advm::isa::kIllegalHandler);
}

}  // namespace
