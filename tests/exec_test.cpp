// The execution layer: work-plan slicing, the worker slice protocol, and
// backend parity.
//
// The load-bearing contract under test is deterministic aggregation —
// plans partition units round-robin with positions recorded, and both
// execution backends return cell reports in cube order with identical
// outcome digests and roll-up JSON bytes. The process-backend tests drive
// the real `advm` binary (ADVM_CLI_PATH, injected by tests/CMakeLists.txt)
// through the worker verb, exactly as the orchestrator spawns it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "advm/exec/backend.h"
#include "advm/exec/costmodel.h"
#include "advm/exec/workerpool.h"
#include "advm/exec/workplan.h"
#include "advm/report.h"
#include "advm/session.h"
#include "support/json.h"

namespace {

using namespace advm;
using namespace advm::core;

class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("advm_exec_") + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

BuildResult build_small_system(Session& session) {
  BuildRequest request;
  request.root = "/SYS";
  request.tests_per_module = 2;
  return session.run(request);
}

MatrixRequest small_cube() {
  MatrixRequest request;
  request.derivatives = {"SC88-A", "SC88-B"};
  request.platforms = {"golden-model", "accelerator"};
  return request;
}

// ------------------------------------------------------------- planning ----

TEST(WorkPlan, MatrixPlanEnumeratesTheCubeDerivativeMajor) {
  const exec::MatrixPlan plan = exec::plan_matrix(small_cube(), 1);
  ASSERT_EQ(plan.cells.size(), 4u);
  EXPECT_EQ(plan.cells[0].derivative, "SC88-A");
  EXPECT_EQ(plan.cells[0].platform, "golden-model");
  EXPECT_EQ(plan.cells[1].derivative, "SC88-A");
  EXPECT_EQ(plan.cells[1].platform, "accelerator");
  EXPECT_EQ(plan.cells[3].derivative, "SC88-B");
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_EQ(plan.cells[i].index, i);
  }
  ASSERT_EQ(plan.slices.size(), 1u);
  EXPECT_EQ(plan.slices[0].cells.size(), 4u);
}

TEST(WorkPlan, SlicesPartitionCellsRoundRobin) {
  const exec::MatrixPlan plan = exec::plan_matrix(small_cube(), 3);
  ASSERT_EQ(plan.slices.size(), 3u);
  // Round-robin deal: cell i lands on slice i % 3.
  EXPECT_EQ(plan.slices[0].cells.size(), 2u);  // cells 0, 3
  EXPECT_EQ(plan.slices[1].cells.size(), 1u);  // cell 1
  EXPECT_EQ(plan.slices[2].cells.size(), 1u);  // cell 2
  EXPECT_EQ(plan.slices[0].cells[1].index, 3u);

  // Every cell appears exactly once across slices.
  std::vector<bool> seen(plan.cells.size(), false);
  for (const exec::MatrixSlice& slice : plan.slices) {
    for (const exec::PlannedCell& cell : slice.cells) {
      EXPECT_FALSE(seen[cell.index]);
      seen[cell.index] = true;
    }
  }
  for (const bool covered : seen) EXPECT_TRUE(covered);
}

TEST(WorkPlan, MoreShardsThanCellsDropsEmptySlices) {
  const exec::MatrixPlan plan = exec::plan_matrix(small_cube(), 64);
  EXPECT_EQ(plan.slices.size(), 4u);  // one cell each, nothing empty
  for (const exec::MatrixSlice& slice : plan.slices) {
    EXPECT_EQ(slice.cells.size(), 1u);
  }
}

TEST(WorkPlan, CorpusPlanDefaultsToTheCanonicalSystem) {
  BuildRequest request;
  request.tests_per_module = 3;
  const exec::CorpusPlan plan = exec::plan_corpus(request, 2);
  ASSERT_EQ(plan.environments.size(), 5u);
  EXPECT_EQ(plan.environments[0].config.name, "PAGE_MODULE");
  EXPECT_EQ(plan.environments[0].config.test_count, 3u);
  ASSERT_EQ(plan.slices.size(), 2u);
  EXPECT_EQ(plan.slices[0].environments.size(), 3u);
  EXPECT_EQ(plan.slices[1].environments.size(), 2u);
}

// ------------------------------------------------------- slice protocol ----

TEST(WorkerSliceProtocol, MatrixSliceRoundTripsThroughJson) {
  exec::WorkerSlice slice;
  slice.kind = exec::WorkerSlice::Kind::Matrix;
  slice.tree_dir = "/tmp/tree with space";
  slice.max_instructions = 12345;
  slice.jobs = 3;
  slice.cache_dir = "/tmp/cache";
  slice.cache_max_bytes = 1u << 20;
  slice.cells = {{2, "SC88-B", "golden-model"}, {5, "SC88-C", "hdl-rtl"}};

  const auto parsed = exec::parse_worker_slice(exec::to_json(slice));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, exec::WorkerSlice::Kind::Matrix);
  EXPECT_EQ(parsed->tree_dir, slice.tree_dir);
  EXPECT_EQ(parsed->max_instructions, 12345u);
  EXPECT_EQ(parsed->jobs, 3u);
  EXPECT_EQ(parsed->cache_dir, "/tmp/cache");
  EXPECT_EQ(parsed->cache_max_bytes, 1u << 20);
  ASSERT_EQ(parsed->cells.size(), 2u);
  EXPECT_EQ(parsed->cells[0].index, 2u);
  EXPECT_EQ(parsed->cells[1].derivative, "SC88-C");
  EXPECT_EQ(parsed->cells[1].platform, "hdl-rtl");
}

TEST(WorkerSliceProtocol, CorpusSliceRoundTripsThroughJson) {
  exec::WorkerSlice slice;
  slice.kind = exec::WorkerSlice::Kind::Corpus;
  slice.tree_dir = "/tmp/out";
  slice.derivative = "SC88-B";
  slice.environments.push_back(
      {1, {"UART_MODULE", ModuleKind::Uart, 4, true}});
  slice.environments.push_back(
      {3, {"RAW_MODULE", ModuleKind::Memory, 2, false}});

  const auto parsed = exec::parse_worker_slice(exec::to_json(slice));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, exec::WorkerSlice::Kind::Corpus);
  EXPECT_EQ(parsed->derivative, "SC88-B");
  ASSERT_EQ(parsed->environments.size(), 2u);
  EXPECT_EQ(parsed->environments[0].config.module, ModuleKind::Uart);
  EXPECT_EQ(parsed->environments[1].config.name, "RAW_MODULE");
  EXPECT_FALSE(parsed->environments[1].config.advm_style);
  EXPECT_EQ(parsed->environments[1].index, 3u);
}

TEST(WorkerSliceProtocol, MalformedSlicesAreRejectedWithADiagnostic) {
  std::string error;
  EXPECT_FALSE(exec::parse_worker_slice("not json", &error).has_value());
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(exec::parse_worker_slice(
                   R"({"kind":"warp","tree_dir":"/x"})", &error)
                   .has_value());
  EXPECT_NE(error.find("warp"), std::string::npos);

  // A matrix slice without cells is a planner bug, not busywork.
  EXPECT_FALSE(exec::parse_worker_slice(
                   R"({"kind":"matrix","tree_dir":"/x","cells":[]})", &error)
                   .has_value());
}

TEST(WorkerSliceProtocol, ServeRequestsRoundTripThroughJson) {
  exec::ServeRequest init;
  init.kind = exec::ServeRequest::Kind::Init;
  init.tree_dir = "/tmp/tree with space";
  init.jobs = 3;
  init.cache_dir = "/tmp/cache";
  init.cache_max_bytes = 1u << 20;
  auto parsed = exec::parse_serve_request(exec::to_json(init));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, exec::ServeRequest::Kind::Init);
  EXPECT_EQ(parsed->tree_dir, init.tree_dir);
  EXPECT_EQ(parsed->jobs, 3u);
  EXPECT_EQ(parsed->cache_dir, "/tmp/cache");
  EXPECT_EQ(parsed->cache_max_bytes, 1u << 20);

  exec::ServeRequest run;
  run.kind = exec::ServeRequest::Kind::Run;
  run.max_instructions = 777;
  run.cells = {{4, "SC88-B", "hdl-rtl"}};
  // The wire format is line-delimited: a request must never span lines.
  EXPECT_EQ(exec::to_json(run).find('\n'), std::string::npos);
  parsed = exec::parse_serve_request(exec::to_json(run));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, exec::ServeRequest::Kind::Run);
  EXPECT_EQ(parsed->max_instructions, 777u);
  ASSERT_EQ(parsed->cells.size(), 1u);
  EXPECT_EQ(parsed->cells[0].index, 4u);

  parsed = exec::parse_serve_request(R"({"cmd":"shutdown"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, exec::ServeRequest::Kind::Shutdown);

  std::string error;
  EXPECT_FALSE(
      exec::parse_serve_request(R"({"cmd":"dance"})", &error).has_value());
  EXPECT_NE(error.find("dance"), std::string::npos);
  EXPECT_FALSE(exec::parse_serve_request(R"({"cmd":"run","cells":[]})",
                                         &error)
                   .has_value());
  EXPECT_FALSE(
      exec::parse_serve_request(R"({"cmd":"init"})", &error).has_value());
}

TEST(ReportJson, ReportRoundTripsThroughJsonWithDigestIntact) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  RunResult result = session.run(RunRequest{});
  ASSERT_TRUE(result.status.ok());

  const std::string json = report_to_json(result.report);
  const auto doc = support::json::parse(json);
  ASSERT_TRUE(doc.has_value());
  const auto parsed = report_from_json(*doc);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->derivative, result.report.derivative);
  EXPECT_EQ(parsed->platform, result.report.platform);
  ASSERT_EQ(parsed->records.size(), result.report.records.size());
  EXPECT_EQ(parsed->outcome_digest(), result.report.outcome_digest());
  EXPECT_EQ(parsed->total_instructions(),
            result.report.total_instructions());
  EXPECT_EQ(parsed->cache.misses, result.report.cache.misses);
  // The re-serialized document is byte-identical — the property the
  // process backend's merge relies on.
  EXPECT_EQ(report_to_json(*parsed), json);
}

// ------------------------------------------------------ backend parity ----

TEST(ExecutionBackend, ThreadBackendMatchesTheDirectRunner) {
  Session direct;
  ASSERT_TRUE(build_small_system(direct).status.ok());
  MatrixResult expected = direct.run(small_cube());
  ASSERT_TRUE(expected.status.ok());
  EXPECT_EQ(expected.backend, "thread");
  EXPECT_EQ(expected.shards, 1u);

  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  exec::ThreadBackend backend(session.context());
  EXPECT_EQ(backend.name(), "thread");
  const exec::MatrixExecution execution =
      backend.run_matrix(exec::plan_matrix(small_cube(), 1));
  ASSERT_TRUE(execution.status.ok()) << execution.status.message;
  ASSERT_EQ(execution.cells.size(), expected.cells.size());
  for (std::size_t i = 0; i < execution.cells.size(); ++i) {
    EXPECT_EQ(execution.cells[i].outcome_digest(),
              expected.cells[i].outcome_digest());
  }
}

TEST(ExecutionBackend, ProcessBackendMatchesThreadBackendByteForByte) {
  Session thread_session;
  ASSERT_TRUE(build_small_system(thread_session).status.ok());
  MatrixResult thread_result = thread_session.run(small_cube());
  ASSERT_TRUE(thread_result.status.ok());

  SessionConfig config;
  config.backend = ExecBackendKind::Process;
  config.shards = 3;
  config.worker_exe = ADVM_CLI_PATH;
  Session process_session(std::move(config));
  ASSERT_TRUE(build_small_system(process_session).status.ok());
  MatrixResult process_result = process_session.run(small_cube());
  ASSERT_TRUE(process_result.status.ok()) << process_result.status.message;

  EXPECT_EQ(process_result.backend, "process");
  EXPECT_EQ(process_result.shards, 3u);
  ASSERT_EQ(process_result.cells.size(), thread_result.cells.size());
  for (std::size_t i = 0; i < process_result.cells.size(); ++i) {
    EXPECT_EQ(process_result.cells[i].outcome_digest(),
              thread_result.cells[i].outcome_digest())
        << "cell " << i;
    EXPECT_EQ(process_result.cells[i].derivative,
              thread_result.cells[i].derivative);
    EXPECT_EQ(process_result.cells[i].platform,
              thread_result.cells[i].platform);
  }
  // The shard-determinism contract the CI gate enforces, at the API level.
  EXPECT_EQ(rollup_to_json(process_result), rollup_to_json(thread_result));
}

TEST(ExecutionBackend, ProcessBackendRunVerbExecutesOnAWorker) {
  SessionConfig config;
  config.backend = ExecBackendKind::Process;
  config.worker_exe = ADVM_CLI_PATH;
  Session session(std::move(config));
  ASSERT_TRUE(build_small_system(session).status.ok());

  Session reference;
  ASSERT_TRUE(build_small_system(reference).status.ok());
  RunResult expected = reference.run(RunRequest{});
  ASSERT_TRUE(expected.status.ok());

  RunResult result = session.run(RunRequest{});
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_EQ(result.report.outcome_digest(),
            expected.report.outcome_digest());
}

TEST(ExecutionBackend, WorkersShareThePersistentCacheAcrossRuns) {
  ScratchDir cache("workers_cache");
  const auto run_once = [&] {
    SessionConfig config;
    config.backend = ExecBackendKind::Process;
    config.shards = 2;
    config.worker_exe = ADVM_CLI_PATH;
    config.cache_dir = cache.path();
    Session session(std::move(config));
    EXPECT_TRUE(build_small_system(session).status.ok());
    return session.run(small_cube());
  };

  MatrixResult cold = run_once();
  ASSERT_TRUE(cold.status.ok()) << cold.status.message;

  // Second orchestration: every worker process starts with a cold
  // in-memory cache, so its misses must be served from the shared disk
  // tier the first run populated.
  MatrixResult warm = run_once();
  ASSERT_TRUE(warm.status.ok()) << warm.status.message;
  std::uint64_t persistent_hits = 0;
  for (const RegressionReport& cell : warm.cells) {
    persistent_hits += cell.cache.persistent_hits;
  }
  EXPECT_GT(persistent_hits, 0u);
  EXPECT_EQ(rollup_to_json(warm), rollup_to_json(cold));
}

TEST(ExecutionBackend, MissingWorkerBinaryIsATypedExecError) {
  SessionConfig config;
  config.backend = ExecBackendKind::Process;
  config.worker_exe = "/nonexistent/advm-worker-binary";
  Session session(std::move(config));
  ASSERT_TRUE(build_small_system(session).status.ok());
  MatrixResult result = session.run(small_cube());
  EXPECT_EQ(result.status.code, "advm.exec-spawn-failed");
  EXPECT_TRUE(result.cells.empty());
}

// ------------------------------------------------------ merge hardening ----

/// A structurally valid one-record report for embedding in crafted shard
/// documents.
std::string tiny_report_json() {
  RegressionReport report;
  report.derivative = "SC88-A";
  report.platform = sim::PlatformKind::GoldenModel;
  TestRunRecord record;
  record.environment = "MEM_MODULE";
  record.test_id = "TEST_MEMORY_000";
  record.build_ok = true;
  record.verdict = soc::Verdict::Pass;
  record.stop = sim::StopReason::Halted;
  record.instructions = 10;
  record.cycles = 10;
  record.state_digest = 0x1234;
  record.modeled_seconds = 1e-6;
  report.records.push_back(std::move(record));
  return report_to_json(report);
}

std::string shard_document(const std::vector<std::size_t>& indices) {
  std::ostringstream os;
  os << R"({"ok":true,"verb":"worker","kind":"matrix","cells":[)";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"index\":" << indices[i] << ",\"report\":"
       << tiny_report_json() << "}";
  }
  os << "]}";
  return os.str();
}

TEST(MergeShardReport, PositionsEveryExpectedCell) {
  std::vector<RegressionReport> cells(4);
  std::vector<bool> filled(4, false);
  const Status status =
      exec::merge_shard_report(shard_document({1, 3}), {1, 3}, cells,
                               filled);
  EXPECT_TRUE(status.ok()) << status.message;
  EXPECT_FALSE(filled[0]);
  EXPECT_TRUE(filled[1]);
  EXPECT_TRUE(filled[3]);
  EXPECT_EQ(cells[3].derivative, "SC88-A");
}

TEST(MergeShardReport, RejectsADuplicateIndexInsteadOfOverwriting) {
  std::vector<RegressionReport> cells(4);
  std::vector<bool> filled(4, false);
  // Same index twice in one document.
  Status status =
      exec::merge_shard_report(shard_document({2, 2}), {2}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  EXPECT_NE(status.message.find("duplicate"), std::string::npos);

  // Already filled by an earlier shard.
  filled.assign(4, false);
  cells.assign(4, RegressionReport{});
  ASSERT_TRUE(exec::merge_shard_report(shard_document({2}), {2}, cells,
                                       filled)
                  .ok());
  cells[2].derivative = "EARLIER-SHARD";
  status =
      exec::merge_shard_report(shard_document({2}), {2}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  // The earlier shard's report survives untouched.
  EXPECT_EQ(cells[2].derivative, "EARLIER-SHARD");
}

TEST(MergeShardReport, RejectsForeignAndOutOfRangeIndices) {
  std::vector<RegressionReport> cells(4);
  std::vector<bool> filled(4, false);
  // In range, but assigned to a different shard.
  Status status =
      exec::merge_shard_report(shard_document({0}), {1, 3}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  EXPECT_NE(status.message.find("not assigned"), std::string::npos);
  EXPECT_FALSE(filled[0]);

  // Outside the plan entirely.
  status =
      exec::merge_shard_report(shard_document({7}), {1}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  EXPECT_NE(status.message.find("outside the plan"), std::string::npos);
}

TEST(MergeShardReport, RejectsAnIncompleteShard) {
  std::vector<RegressionReport> cells(4);
  std::vector<bool> filled(4, false);
  const Status status =
      exec::merge_shard_report(shard_document({1}), {1, 3}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  EXPECT_NE(status.message.find("1 of 2"), std::string::npos);
}

TEST(MergeShardReport, ExtractsPerCellWallClockForTheCostModel) {
  std::vector<RegressionReport> cells(3);
  std::vector<bool> filled(3, false);
  std::vector<double> millis(3, -1.0);
  std::ostringstream os;
  os << R"({"ok":true,"verb":"worker","kind":"matrix","cells":[)"
     << R"({"index":0,"micros":2500,"report":)" << tiny_report_json()
     << "},"
     // No micros field: an older worker binary answering a newer
     // orchestrator must merge fine, just without feedback.
     << R"({"index":2,"report":)" << tiny_report_json() << "}]}";
  const Status status =
      exec::merge_shard_report(os.str(), {0, 2}, cells, filled, &millis);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_DOUBLE_EQ(millis[0], 2.5);
  EXPECT_DOUBLE_EQ(millis[1], -1.0);
  EXPECT_DOUBLE_EQ(millis[2], -1.0);
  EXPECT_TRUE(filled[0]);
  EXPECT_TRUE(filled[2]);
}

TEST(MergeShardReport, SurfacesAWorkerErrorDocument) {
  std::vector<RegressionReport> cells(1);
  std::vector<bool> filled(1, false);
  const Status status = exec::merge_shard_report(
      R"({"ok":false,"verb":"worker","error":{"code":"advm.import-failed",)"
      R"("message":"tree vanished"}})",
      {0}, cells, filled);
  EXPECT_EQ(status.code, "advm.exec-worker-failed");
  EXPECT_NE(status.message.find("tree vanished"), std::string::npos);
}

// ------------------------------------------------------------ cost model --

TEST(CostModel, RecordsPublishAndReloadAcrossInstances) {
  ScratchDir cache("costmodel_roundtrip");
  {
    exec::CostModel model(cache.path());
    EXPECT_TRUE(model.enabled());
    model.load();
    EXPECT_FALSE(
        model.estimate("SC88-A", "golden-model", "digest1").has_value());
    model.record({"SC88-A", "golden-model", "digest1", 12.5});
    model.record({"SC88-B", "hdl-rtl", "digest1", 80.0});
    EXPECT_EQ(model.publish(), 2u);
  }
  exec::CostModel reloaded(cache.path());
  reloaded.load();
  EXPECT_EQ(reloaded.estimate("SC88-A", "golden-model", "digest1"), 12.5);
  EXPECT_EQ(reloaded.estimate("SC88-B", "hdl-rtl", "digest1"), 80.0);
  // A different tree digest is a different key: no estimate.
  EXPECT_FALSE(
      reloaded.estimate("SC88-A", "golden-model", "digest2").has_value());
}

TEST(CostModel, EstimateDecaysTowardNewerObservations) {
  ScratchDir cache("costmodel_decay");
  exec::CostModel model(cache.path());
  model.load();
  model.record({"SC88-A", "golden-model", "t", 100.0});
  model.record({"SC88-A", "golden-model", "t", 10.0});
  model.publish();
  // One decay step: 0.5·100 + 0.5·10.
  EXPECT_DOUBLE_EQ(*model.estimate("SC88-A", "golden-model", "t"), 55.0);
  // A third observation pulls the average further toward the present.
  model.record({"SC88-A", "golden-model", "t", 10.0});
  model.publish();
  EXPECT_DOUBLE_EQ(*model.estimate("SC88-A", "golden-model", "t"), 32.5);
}

TEST(CostModel, HistoryIsBoundedPerKey) {
  ScratchDir cache("costmodel_bounded");
  exec::CostModel model(cache.path());
  model.load();
  for (int i = 0; i < 20; ++i) {
    model.record({"SC88-A", "golden-model", "t", 7.0});
    model.publish();
  }
  std::ifstream in(model.path());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, exec::CostModel::kMaxHistoryPerKey);
}

TEST(CostModel, CorruptLinesFailClosedToAColdModel) {
  ScratchDir cache("costmodel_corrupt");
  exec::CostModel model(cache.path());
  {
    std::ofstream out(model.path());
    out << "this is not json\n"
        << R"({"derivative":"SC88-A","platform":"golden-model"})" << "\n"
        << R"({"derivative":"SC88-A","platform":"golden-model",)"
        << R"("tree":"t","millis":4.0})" << "\n";
  }
  model.load();
  // Only the well-formed line survives.
  EXPECT_EQ(model.estimate("SC88-A", "golden-model", "t"), 4.0);
}

TEST(CostModel, EmptyCacheDirDisablesTheModel) {
  exec::CostModel model("");
  EXPECT_FALSE(model.enabled());
  model.load();
  model.record({"SC88-A", "golden-model", "t", 1.0});
  EXPECT_EQ(model.publish(), 0u);
  EXPECT_FALSE(model.estimate("SC88-A", "golden-model", "t").has_value());
}

// --------------------------------------------------- spawn-path hardening --

TEST(WorkerSpawn, SliceWriteFailureIsATypedStatusNotAWorkerParseError) {
  exec::WorkerSlice slice;
  slice.kind = exec::WorkerSlice::Kind::Matrix;
  slice.tree_dir = "/tmp/tree";
  slice.cells = {{0, "SC88-A", "golden-model"}};
  const Status status = exec::write_slice_file(
      "/nonexistent-advm-dir/shard-0.slice.json", slice);
  EXPECT_EQ(status.code, "advm.exec-spawn-failed");
  EXPECT_NE(status.message.find("cannot write slice file"),
            std::string::npos);

  ScratchDir scratch("slice_write");
  EXPECT_TRUE(
      exec::write_slice_file(scratch.path() + "/ok.slice.json", slice)
          .ok());
}

TEST(WorkerSpawn, OneshotSpawnFailureReportsInsteadOfDecodingGarbage) {
  ScratchDir scratch("oneshot_spawn");
  std::string error;
  const int exit_code = exec::run_oneshot_worker(
      "/nonexistent/advm-worker-binary", scratch.path() + "/s.json",
      scratch.path() + "/out.json", scratch.path() + "/err.txt", &error);
  EXPECT_EQ(exit_code, -1);
  EXPECT_FALSE(error.empty());
}

TEST(WorkerPool, DivideJobsNeverOversubscribesAndNeverStarves) {
  EXPECT_EQ(exec::divide_jobs(8, 4), 2u);
  EXPECT_EQ(exec::divide_jobs(8, 2), 4u);
  // Fewer jobs than workers: every worker still gets one thread.
  EXPECT_EQ(exec::divide_jobs(3, 4), 1u);
  EXPECT_EQ(exec::divide_jobs(1, 8), 1u);
  // jobs=0 = one per hardware thread, divided across workers.
  EXPECT_GE(exec::divide_jobs(0, 2), 1u);
  EXPECT_EQ(exec::divide_jobs(4, 0), 4u);
}

// --------------------------------------------------------- pooled workers --

TEST(WorkerPool, WedgedWorkerTimesOutWithATypedStatus) {
  // A worker that never answers (here: a script that just sleeps, the
  // stand-in for an infinite loop in a simulated test) must surface as a
  // typed timeout within the per-request deadline — the orchestrator
  // used to block forever in read(2).
  ScratchDir scratch("wedged_worker");
  const std::string script = scratch.path() + "/wedged.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nexec sleep 30\n";
  }
  std::filesystem::permissions(script,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  exec::WorkerPool pool;
  pool.set_request_timeout_ms(250);
  ASSERT_TRUE(pool.spawn(script, scratch.path(), 1).ok());
  std::string response;
  const auto started = std::chrono::steady_clock::now();
  const Status status =
      pool.roundtrip(0, R"({"cmd":"shutdown"})", &response);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_EQ(status.code, "advm.exec-worker-timeout");
  EXPECT_NE(status.message.find("no response within"), std::string::npos);
  // Generous bound: the point is "deadline", not "30 seconds".
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  // The wedged worker was killed on the spot; shutdown reaps the corpse
  // and reports the signal, which must not wedge either.
  const Status reaped = pool.shutdown();
  EXPECT_NE(reaped.message.find("signal"), std::string::npos);
}

TEST(WorkerPool, ShutdownRemovesTheStderrCaptureFiles) {
  ScratchDir scratch("stderr_cleanup");
  exec::WorkerPool pool;
  ASSERT_TRUE(pool.spawn(ADVM_CLI_PATH, scratch.path(), 2).ok());
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    paths.push_back(pool.stderr_path(i));
    EXPECT_TRUE(std::filesystem::exists(paths.back())) << paths.back();
  }
  const Status status = pool.shutdown();
  EXPECT_TRUE(status.ok()) << status.message;
  // A successful orchestration must not leak one file per worker.
  for (const std::string& path : paths) {
    EXPECT_FALSE(std::filesystem::exists(path)) << path;
  }
}

TEST(ExecutionBackend, WarmCostModelSeedsDispatchAndBatchesTinyCells) {
  ScratchDir cache("cost_feedback");
  const auto run_once = [&](std::size_t batch_threshold_ms) {
    SessionConfig config;
    config.backend = ExecBackendKind::Process;
    config.shards = 2;
    config.worker_exe = ADVM_CLI_PATH;
    config.cache_dir = cache.path();
    config.batch_threshold_ms = batch_threshold_ms;
    Session session(std::move(config));
    EXPECT_TRUE(build_small_system(session).status.ok());
    return session.run(small_cube());
  };

  // Lap 1: cold model — test-count estimates, no batching possible.
  MatrixResult cold = run_once(SessionConfig::kAutoBatchThreshold);
  ASSERT_TRUE(cold.status.ok()) << cold.status.message;
  EXPECT_EQ(cold.cost_model.source, "estimate");
  EXPECT_EQ(cold.cost_model.seeded_cells, 0u);
  // Every cell's measured wall-clock fed the model for the next lap.
  EXPECT_EQ(cold.cost_model.recorded, cold.cells.size());
  EXPECT_EQ(cold.batched_requests, 0u);

  // Lap 2: warm model, threshold far above any cell's runtime — all four
  // cells are "tiny" and pack into one multi-cell request batch.
  MatrixResult batched = run_once(1'000'000);
  ASSERT_TRUE(batched.status.ok()) << batched.status.message;
  EXPECT_EQ(batched.cost_model.source, "measured");
  EXPECT_EQ(batched.cost_model.seeded_cells, batched.cells.size());
  EXPECT_GT(batched.batched_requests, 0u);
  std::size_t requests = 0;
  for (const MatrixWorkerStats& worker : batched.workers) {
    requests += worker.requests;
  }
  EXPECT_LT(requests, batched.cells.size());

  // Lap 3: batching disabled — warm seed order, one request per cell.
  MatrixResult unbatched = run_once(0);
  ASSERT_TRUE(unbatched.status.ok()) << unbatched.status.message;
  EXPECT_EQ(unbatched.cost_model.source, "measured");
  EXPECT_EQ(unbatched.batched_requests, 0u);

  // The determinism contract is unchanged by seeding or batching.
  EXPECT_EQ(rollup_to_json(batched), rollup_to_json(cold));
  EXPECT_EQ(rollup_to_json(unbatched), rollup_to_json(cold));
}

TEST(WorkerPool, TwoWorkersServeEightCellsWithReuseAndThreadParity) {
  Session thread_session;
  ASSERT_TRUE(build_small_system(thread_session).status.ok());

  MatrixRequest cube;
  cube.derivatives = {"SC88-A", "SC88-B", "SC88-C", "SC88-D"};
  cube.platforms = {"golden-model", "hdl-rtl"};
  MatrixResult thread_result = thread_session.run(cube);
  ASSERT_TRUE(thread_result.status.ok());
  EXPECT_TRUE(thread_result.workers.empty());
  EXPECT_EQ(thread_result.worker_reuse(), 0u);

  SessionConfig config;
  config.backend = ExecBackendKind::Process;
  config.shards = 2;
  config.jobs = 4;
  config.worker_exe = ADVM_CLI_PATH;
  Session pool_session(std::move(config));
  ASSERT_TRUE(build_small_system(pool_session).status.ok());
  MatrixResult pooled = pool_session.run(cube);
  ASSERT_TRUE(pooled.status.ok()) << pooled.status.message;

  ASSERT_EQ(pooled.cells.size(), 8u);
  // Two workers spawned once for the whole lap, each seeded with one
  // cell and pulling the rest dynamically: every worker serves at least
  // one request and the 8 single-cell requests amortize the 2 spawns.
  ASSERT_EQ(pooled.workers.size(), 2u);
  std::size_t total_requests = 0;
  std::size_t total_cells = 0;
  for (const MatrixWorkerStats& worker : pooled.workers) {
    EXPECT_GE(worker.requests, 1u) << "worker " << worker.worker
                                   << " never served a request";
    total_requests += worker.requests;
    total_cells += worker.cells;
  }
  EXPECT_EQ(total_cells, 8u);
  EXPECT_EQ(total_requests, 8u);
  EXPECT_EQ(pooled.worker_reuse(), 6u);
  // --jobs 4 across 2 live workers: 2 threads each, never 4×2.
  EXPECT_EQ(pooled.jobs_per_worker, 2u);

  // The determinism contract is unchanged by pooling.
  EXPECT_EQ(rollup_to_json(pooled), rollup_to_json(thread_result));
}

// ------------------------------------------------------- fault tolerance --

TEST(FaultPlan, ParsesClausesAndRendersPerWorkerIncarnation) {
  std::string error;
  const auto plan = exec::parse_fault_plan(
      "0:crash@1; *:garbage@cell=2 ;1:exit@3;0:wedge@cell=0", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->size(), 4u);
  EXPECT_EQ((*plan)[0].worker, 0u);
  EXPECT_EQ((*plan)[0].action, exec::FaultClause::Action::Crash);
  EXPECT_EQ((*plan)[0].request, 1u);
  EXPECT_EQ((*plan)[0].cell, exec::FaultClause::kNoCell);
  EXPECT_EQ((*plan)[1].worker, exec::FaultClause::kAnyWorker);
  EXPECT_EQ((*plan)[1].action, exec::FaultClause::Action::Garbage);
  EXPECT_EQ((*plan)[1].cell, 2u);

  // Worker 0, first incarnation: its own clauses plus the wildcard.
  EXPECT_EQ(exec::fault_plan_for_worker(*plan, 0, true),
            "crash@1,garbage@cell=2,wedge@cell=0");
  // After a respawn, request-count clauses have already fired in the dead
  // incarnation; only cell-addressed clauses survive (poisoned-cell
  // semantics: the fault follows the cell, not the process).
  EXPECT_EQ(exec::fault_plan_for_worker(*plan, 0, false),
            "garbage@cell=2,wedge@cell=0");
  EXPECT_EQ(exec::fault_plan_for_worker(*plan, 1, true),
            "garbage@cell=2,exit@3");
  // A slot nothing addresses directly still inherits the wildcard clause.
  EXPECT_EQ(exec::fault_plan_for_worker(*plan, 7, true), "garbage@cell=2");

  // The rendered worker-side list parses back to the same faults.
  const auto actions = exec::parse_worker_fault_actions(
      exec::fault_plan_for_worker(*plan, 0, true), &error);
  ASSERT_TRUE(actions.has_value()) << error;
  ASSERT_EQ(actions->size(), 3u);
  EXPECT_EQ((*actions)[0].action, exec::FaultClause::Action::Crash);
  EXPECT_EQ((*actions)[0].request, 1u);
  EXPECT_EQ((*actions)[2].cell, 0u);

  // Blank plans are legal no-ops on both sides of the wire.
  EXPECT_TRUE(exec::parse_fault_plan("")->empty());
  EXPECT_TRUE(exec::parse_worker_fault_actions("")->empty());
}

TEST(FaultPlan, MalformedClausesAreRejectedWithADiagnostic) {
  const auto expect_bad = [](std::string_view text) {
    std::string error;
    EXPECT_FALSE(exec::parse_fault_plan(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  };
  expect_bad("crash@1");        // missing '<worker|*>:' prefix
  expect_bad("0:crash");        // missing '@<trigger>'
  expect_bad("0:melt@1");       // unknown action
  expect_bad("0:crash@0");      // run requests are numbered from 1
  expect_bad("x:crash@1");      // non-numeric worker slot
  expect_bad("0:crash@cell=");  // empty cell index
  expect_bad("0:crash@cell=x");
}

TEST(FaultPolicy, GroupsRetryThenSplitThenPoison) {
  // First failure of any group: requeue as-is.
  EXPECT_EQ(exec::fate_after_failure(4, 1), exec::GroupFate::Retry);
  EXPECT_EQ(exec::fate_after_failure(1, 1), exec::GroupFate::Retry);
  // Budget exhausted: a batch splits so one bad cell cannot condemn its
  // neighbours; a single cell has nowhere left to hide and is poisoned.
  EXPECT_EQ(exec::fate_after_failure(4, exec::kMaxGroupAttempts),
            exec::GroupFate::Split);
  EXPECT_EQ(exec::fate_after_failure(1, exec::kMaxGroupAttempts),
            exec::GroupFate::Poison);
}

/// A process-backend session wired for fault injection against the small
/// cube, next to an identical thread-backend reference.
struct ChaosLab {
  MatrixResult thread_result;

  ChaosLab() {
    Session reference;
    EXPECT_TRUE(build_small_system(reference).status.ok());
    thread_result = reference.run(small_cube());
    EXPECT_TRUE(thread_result.status.ok());
  }

  MatrixResult run(const std::string& fault_plan, std::size_t max_respawns,
                   std::size_t request_timeout_ms = 0) {
    SessionConfig config;
    config.backend = ExecBackendKind::Process;
    config.shards = 2;
    config.worker_exe = ADVM_CLI_PATH;
    config.fault_plan = fault_plan;
    config.max_respawns = max_respawns;
    if (request_timeout_ms != 0) {
      config.request_timeout_ms = request_timeout_ms;
    }
    Session session(std::move(config));
    EXPECT_TRUE(build_small_system(session).status.ok());
    return session.run(small_cube());
  }
};

TEST(FaultTolerance, CrashedWorkerCellsAreRequeuedWithThreadParity) {
  ChaosLab lab;
  // Worker 0 dies on its first request; no respawn budget. Its seed cell
  // must migrate to the surviving worker and the lap must stay green.
  MatrixResult result = lab.run("0:crash@1", /*max_respawns=*/0);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_GE(result.fault.retries, 1u);
  EXPECT_GE(result.fault.requeued_cells, 1u);
  EXPECT_EQ(result.fault.respawns, 0u);
  EXPECT_EQ(result.fault.quarantined_cells, 0u);
  EXPECT_FALSE(result.fault.degraded);
  // The dead slot served nothing; the survivor carried the whole cube.
  ASSERT_EQ(result.workers.size(), 2u);
  EXPECT_EQ(result.workers[0].requests, 0u);
  EXPECT_EQ(result.workers[1].cells, result.cells.size());
  EXPECT_EQ(rollup_to_json(result), rollup_to_json(lab.thread_result));
}

TEST(FaultTolerance, RespawnBudgetRestoresACrashedSlot) {
  ChaosLab lab;
  MatrixResult result = lab.run("0:crash@1", /*max_respawns=*/1);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_EQ(result.fault.respawns, 1u);
  EXPECT_GE(result.fault.retries, 1u);
  EXPECT_EQ(result.fault.quarantined_cells, 0u);
  EXPECT_FALSE(result.fault.degraded);
  EXPECT_EQ(rollup_to_json(result), rollup_to_json(lab.thread_result));
}

TEST(FaultTolerance, GarbageReplyRetiresTheWorkerAndRequeues) {
  ChaosLab lab;
  // A worker whose reply is not a protocol document cannot be trusted
  // with further requests even though its process is still alive.
  MatrixResult result = lab.run("1:garbage@1", /*max_respawns=*/1);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_GE(result.fault.retries, 1u);
  EXPECT_EQ(result.fault.respawns, 1u);
  EXPECT_EQ(result.fault.quarantined_cells, 0u);
  EXPECT_EQ(rollup_to_json(result), rollup_to_json(lab.thread_result));
}

TEST(FaultTolerance, WedgedWorkerIsTimedOutAndItsCellsRequeued) {
  ChaosLab lab;
  // The wedge burns one request deadline, then the cell is re-run
  // elsewhere; keep the timeout short so the test stays fast.
  MatrixResult result = lab.run("0:wedge@1", /*max_respawns=*/0,
                                /*request_timeout_ms=*/1500);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_EQ(result.request_timeout_ms, 1500u);
  EXPECT_GE(result.fault.retries, 1u);
  EXPECT_FALSE(result.fault.degraded);
  EXPECT_EQ(rollup_to_json(result), rollup_to_json(lab.thread_result));
}

TEST(FaultTolerance, PoisonedCellIsQuarantinedWithATypedOutcome) {
  ChaosLab lab;
  // Cell 1 kills every incarnation that touches it. After the retry
  // budget it must be quarantined — a typed per-cell outcome, not a
  // failed run — and every other cell must still match the reference.
  MatrixResult result = lab.run("*:crash@cell=1", /*max_respawns=*/1);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_EQ(result.fault.quarantined_cells, 1u);
  EXPECT_GE(result.fault.respawns, 1u);
  EXPECT_FALSE(result.fault.degraded);

  ASSERT_EQ(result.cells.size(), lab.thread_result.cells.size());
  const RegressionReport& poisoned = result.cells[1];
  ASSERT_EQ(poisoned.records.size(), 1u);
  EXPECT_EQ(poisoned.records[0].test_id, exec::kPoisonedCellOutcome);
  EXPECT_FALSE(poisoned.records[0].build_ok);
  EXPECT_NE(poisoned.records[0].detail.find("quarantined"),
            std::string::npos);
  EXPECT_FALSE(poisoned.all_passed());
  // The quarantine is surgical: the healthy cells are untouched.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2},
                              std::size_t{3}}) {
    EXPECT_EQ(result.cells[i].outcome_digest(),
              lab.thread_result.cells[i].outcome_digest())
        << "cell " << i;
  }
}

TEST(FaultTolerance, AllWorkersDeadDegradesToTheThreadBackend) {
  ChaosLab lab;
  // Every incarnation dies on its first request and there is no respawn
  // budget: the orchestrator must finish the lap in-process rather than
  // fail it, and must say so.
  MatrixResult result = lab.run("*:crash@1", /*max_respawns=*/0);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_TRUE(result.fault.degraded);
  EXPECT_EQ(result.fault.quarantined_cells, 0u);
  EXPECT_GE(result.fault.retries, 2u);
  EXPECT_EQ(rollup_to_json(result), rollup_to_json(lab.thread_result));
}

TEST(FaultTolerance, ABatchSplitsBeforeAnyCellIsCondemned) {
  // Warm the cost model so the next lap packs all four tiny cells into a
  // single multi-cell batch, then poison one cell inside that batch: the
  // batch must split into singles so only the bad cell is quarantined.
  ScratchDir cache("chaos_batch");
  const auto run_once = [&](std::size_t batch_threshold_ms,
                            const std::string& fault_plan) {
    SessionConfig config;
    config.backend = ExecBackendKind::Process;
    config.shards = 2;
    config.worker_exe = ADVM_CLI_PATH;
    config.cache_dir = cache.path();
    config.batch_threshold_ms = batch_threshold_ms;
    config.fault_plan = fault_plan;
    config.max_respawns = 5;
    Session session(std::move(config));
    EXPECT_TRUE(build_small_system(session).status.ok());
    return session.run(small_cube());
  };

  MatrixResult cold = run_once(SessionConfig::kAutoBatchThreshold, "");
  ASSERT_TRUE(cold.status.ok()) << cold.status.message;

  MatrixResult split = run_once(1'000'000, "*:crash@cell=2");
  ASSERT_TRUE(split.status.ok()) << split.status.message;
  EXPECT_EQ(split.fault.quarantined_cells, 1u);
  // The multi-cell batch was requeued whole at least once before the
  // split — more cells requeued than the lone poisoned cell explains.
  EXPECT_GT(split.fault.requeued_cells, split.cells.size());
  ASSERT_EQ(split.cells.size(), cold.cells.size());
  for (std::size_t i = 0; i < split.cells.size(); ++i) {
    if (i == 2) {
      ASSERT_EQ(split.cells[i].records.size(), 1u);
      EXPECT_EQ(split.cells[i].records[0].test_id,
                exec::kPoisonedCellOutcome);
      continue;
    }
    EXPECT_EQ(split.cells[i].outcome_digest(),
              cold.cells[i].outcome_digest())
        << "cell " << i;
  }
}

TEST(FaultTolerance, CrashLapKeepsTheMatrixJsonContract) {
  // The chaos counters ride the same document the CI gates diff; pin the
  // process-only fields so a rename cannot slip through the gates.
  ChaosLab lab;
  MatrixResult result = lab.run("0:crash@1", /*max_respawns=*/1);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  const std::string json = to_json(result);
  for (const char* needle :
       {"\"fault\":{\"retries\":", "\"requeued_cells\":", "\"respawns\":",
        "\"quarantined_cells\":", "\"degraded\":false",
        "\"request_timeout_ms\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Thread documents carry no fault block — goldens must not churn.
  const std::string thread_json =
      to_json(lab.thread_result);
  EXPECT_EQ(thread_json.find("\"fault\""), std::string::npos);
  EXPECT_EQ(thread_json.find("request_timeout_ms"), std::string::npos);
}

TEST(ExecutionBackend, CorpusWorkersGenerateTheTreeTheThreadPathBuilds) {
  // Shard the canonical corpus across workers and diff the result against
  // an in-process build: byte-identical trees, or sharded init is broken.
  ScratchDir out("corpus_out");
  BuildRequest request;
  request.tests_per_module = 2;
  const exec::CorpusPlan plan = exec::plan_corpus(request, 3);
  exec::ProcessBackendConfig config;
  config.worker_exe = ADVM_CLI_PATH;
  const Status status =
      exec::generate_corpus_with_workers(plan, out.path(), config);
  ASSERT_TRUE(status.ok()) << status.message;

  Session reference;
  ASSERT_TRUE(build_small_system(reference).status.ok());

  std::size_t files_compared = 0;
  for (const std::string& path : reference.vfs().list_tree("/SYS")) {
    // Workers own the environments; the orchestrator (not under test
    // here) owns the global layer.
    if (path.find("Global_Libraries") != std::string::npos) continue;
    const std::filesystem::path on_disk =
        std::filesystem::path(out.path()) / path.substr(sizeof("/SYS"));
    ASSERT_TRUE(std::filesystem::exists(on_disk)) << on_disk;
    std::ifstream in(on_disk, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), reference.vfs().read_required(path)) << path;
    ++files_compared;
  }
  EXPECT_GT(files_compared, 10u);
}

}  // namespace
