// Unit and property tests for the SC88 ISA: register parsing, opcode table
// integrity, encode/decode round-trips, and the disassembler.
#include <gtest/gtest.h>

#include <set>

#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/registers.h"

namespace {

using namespace advm::isa;

// ----------------------------------------------------------- registers ----

TEST(Registers, ParseDataAndAddress) {
  auto d0 = parse_register("d0");
  ASSERT_TRUE(d0.has_value());
  EXPECT_TRUE(d0->is_data());
  EXPECT_EQ(d0->index, 0);

  auto a12 = parse_register("A12");  // paper Fig 7 spells it upper-case
  ASSERT_TRUE(a12.has_value());
  EXPECT_TRUE(a12->is_address());
  EXPECT_EQ(a12->index, 12);
}

TEST(Registers, ParseRejectsOutOfRangeAndGarbage) {
  EXPECT_FALSE(parse_register("d16").has_value());
  EXPECT_FALSE(parse_register("a99").has_value());
  EXPECT_FALSE(parse_register("x3").has_value());
  EXPECT_FALSE(parse_register("d").has_value());
  EXPECT_FALSE(parse_register("d1x").has_value());
  EXPECT_FALSE(parse_register("").has_value());
}

TEST(Registers, EncodeDecodeRoundTrip) {
  for (int kind = 0; kind < 2; ++kind) {
    for (std::uint8_t i = 0; i < 16; ++i) {
      RegSpec r = kind == 0 ? RegSpec::data(i) : RegSpec::address(i);
      auto back = RegSpec::decode(r.encode());
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, r);
    }
  }
  EXPECT_FALSE(RegSpec::decode(kNoRegister).has_value());
  EXPECT_FALSE(RegSpec::decode(0x20).has_value());
}

TEST(Registers, SpellingMatchesAssemblerSyntax) {
  EXPECT_EQ(RegSpec::data(14).to_string(), "d14");
  EXPECT_EQ(RegSpec::address(10).to_string(), "a10");
  EXPECT_EQ(RegSpec::sp(), RegSpec::address(kStackPointerIndex));
}

TEST(Registers, CoreRegParsing) {
  EXPECT_EQ(parse_core_reg("PSW"), CoreReg::Psw);
  EXPECT_EQ(parse_core_reg("vtbase"), CoreReg::VtBase);
  EXPECT_FALSE(parse_core_reg("NOPE").has_value());
}

// -------------------------------------------------------------- opcodes ----

TEST(Opcodes, TableHasUniqueMnemonicsAndBytes) {
  std::set<std::string> names;
  std::set<std::uint8_t> bytes;
  for (const auto& info : opcode_table()) {
    EXPECT_TRUE(names.insert(info.mnemonic).second)
        << "duplicate mnemonic " << info.mnemonic;
    EXPECT_TRUE(bytes.insert(static_cast<std::uint8_t>(info.op)).second)
        << "duplicate opcode byte for " << info.mnemonic;
  }
}

TEST(Opcodes, LookupMnemonicIsCaseInsensitive) {
  auto m = lookup_mnemonic("insert");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->op, Opcode::Insert);

  auto j = lookup_mnemonic("JNZ");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->op, Opcode::Jmp);
  EXPECT_EQ(j->cond, Cond::Nz);

  EXPECT_FALSE(lookup_mnemonic("FROB").has_value());
}

TEST(Opcodes, RetIsAliasForReturn) {
  auto r = lookup_mnemonic("RET");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->op, Opcode::Return);
}

TEST(Opcodes, PaperVisibleVocabularyIsPresent) {
  // The exact mnemonics used by the paper's Figs 6 and 7 must exist.
  for (const char* m : {"INSERT", "LOAD", "STORE", "CALL", "RETURN"}) {
    EXPECT_TRUE(lookup_mnemonic(m).has_value()) << m;
  }
}

TEST(Opcodes, DecodeRejectsUnassignedBytes) {
  EXPECT_FALSE(decode_opcode(0xEE).has_value());
  EXPECT_FALSE(decode_opcode(0x0F).has_value());
  EXPECT_EQ(decode_opcode(0x30), Opcode::Insert);
}

// ------------------------------------------------- encode/decode property --

/// Round-trips every opcode with a representative operand assignment.
class EncodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

Instruction representative(Opcode op) {
  Instruction i;
  i.op = op;
  const auto& info = opcode_info(op);
  switch (info.pattern) {
    case OperandPattern::None:
      break;
    case OperandPattern::RcSrc:
      i.rc = RegSpec::data(3);
      i.mode = AddrMode::Immediate;
      i.imm = 0xDEADBEEF;
      break;
    case OperandPattern::MemRa:
      i.ra = RegSpec::data(7);
      i.mode = AddrMode::Absolute;
      i.imm = 0xF000'0010;
      break;
    case OperandPattern::Ra:
      i.ra = RegSpec::data(1);
      break;
    case OperandPattern::Rc:
      i.rc = RegSpec::data(2);
      break;
    case OperandPattern::RcRaSrc:
      i.rc = RegSpec::data(1);
      i.ra = RegSpec::data(2);
      i.mode = AddrMode::Register;
      i.rb = RegSpec::data(3);
      break;
    case OperandPattern::RaSrc:
      i.ra = RegSpec::data(4);
      i.mode = AddrMode::Immediate;
      i.imm = 55;
      break;
    case OperandPattern::RcRa:
      i.rc = RegSpec::data(5);
      i.ra = RegSpec::data(6);
      break;
    case OperandPattern::RcRaSrcPosW:
      i.rc = RegSpec::data(14);
      i.ra = RegSpec::data(14);
      i.mode = AddrMode::Immediate;
      i.imm = 8;
      i.pos = 0;
      i.width = 5;
      break;
    case OperandPattern::RcRaPosW:
      i.rc = RegSpec::data(9);
      i.ra = RegSpec::data(10);
      i.pos = 4;
      i.width = 12;
      break;
    case OperandPattern::Target:
      // Immediate target: mode byte stays None/cond; rb absent.
      i.imm = 0x1000;
      break;
    case OperandPattern::Imm8:
      i.pos = 3;
      break;
    case OperandPattern::RcCr:
      i.rc = RegSpec::data(0);
      i.pos = static_cast<std::uint8_t>(CoreReg::Psw);
      break;
    case OperandPattern::CrRa:
      i.ra = RegSpec::data(0);
      i.pos = static_cast<std::uint8_t>(CoreReg::VtBase);
      break;
  }
  return i;
}

TEST_P(EncodeRoundTrip, EncodeThenDecodeIsIdentity) {
  Instruction original = representative(GetParam());
  EncodeError err;
  auto word = encode(original, &err);
  ASSERT_TRUE(word.has_value()) << to_string(err);
  auto back = decode(*word, &err);
  ASSERT_TRUE(back.has_value()) << to_string(err);
  EXPECT_EQ(*back, original);
}

std::vector<Opcode> all_opcodes() {
  std::vector<Opcode> ops;
  for (const auto& info : opcode_table()) ops.push_back(info.op);
  return ops;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::ValuesIn(all_opcodes()),
                         [](const ::testing::TestParamInfo<Opcode>& info) {
                           return std::string(to_string(info.param));
                         });

/// Property sweep: INSERT field geometry across the full legal (pos, width)
/// lattice round-trips; illegal combinations are rejected.
class InsertGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InsertGeometry, LegalGeometryRoundTripsIllegalRejected) {
  auto [pos, width] = GetParam();
  Instruction i;
  i.op = Opcode::Insert;
  i.rc = RegSpec::data(14);
  i.ra = RegSpec::data(14);
  i.mode = AddrMode::Immediate;
  i.imm = 1;
  i.pos = static_cast<std::uint8_t>(pos);
  i.width = static_cast<std::uint8_t>(width);

  const bool legal = pos <= 31 && width >= 1 && width <= 32 &&
                     pos + width <= 32;
  EncodeError err;
  auto word = encode(i, &err);
  if (legal) {
    ASSERT_TRUE(word.has_value());
    auto back = decode(*word, &err);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->pos, pos);
    EXPECT_EQ(back->width, width);
  } else {
    EXPECT_FALSE(word.has_value());
    EXPECT_EQ(err, EncodeError::BadFieldGeometry);
  }
}

INSTANTIATE_TEST_SUITE_P(PosWidthLattice, InsertGeometry,
                         ::testing::Combine(::testing::Values(0, 1, 5, 27, 31,
                                                              32),
                                            ::testing::Values(0, 1, 5, 6, 32,
                                                              33)));

// --------------------------------------------------------- decode errors --

TEST(Decode, RejectsIllegalOpcodeByte) {
  EncodedInstr w{};
  w[0] = 0xEE;
  EncodeError err;
  EXPECT_FALSE(decode(w, &err).has_value());
  EXPECT_EQ(err, EncodeError::IllegalOpcode);
}

TEST(Decode, RejectsBadRegisterByte) {
  EncodedInstr w{};
  w[0] = static_cast<std::uint8_t>(Opcode::Mov);
  w[1] = 0x7F;  // not a register, not kNoRegister
  w[4] = static_cast<std::uint8_t>(AddrMode::Immediate);
  EncodeError err;
  EXPECT_FALSE(decode(w, &err).has_value());
  EXPECT_EQ(err, EncodeError::BadRegisterByte);
}

TEST(Decode, RejectsNonZeroReservedByte) {
  Instruction i;
  i.op = Opcode::Nop;
  auto w = encode(i);
  ASSERT_TRUE(w.has_value());
  (*w)[7] = 1;
  EncodeError err;
  EXPECT_FALSE(decode(*w, &err).has_value());
  EXPECT_EQ(err, EncodeError::ReservedByteNonZero);
}

TEST(Decode, RejectsBadModeByte) {
  EncodedInstr w{};
  w[0] = static_cast<std::uint8_t>(Opcode::Load);
  w[1] = RegSpec::data(0).encode();
  w[2] = kNoRegister;
  w[3] = kNoRegister;
  w[4] = 99;
  EncodeError err;
  EXPECT_FALSE(decode(w, &err).has_value());
  EXPECT_EQ(err, EncodeError::BadMode);
}

// ---------------------------------------------------------- disassembler --

TEST(Disassemble, PaperFig6InsertForm) {
  Instruction i;
  i.op = Opcode::Insert;
  i.rc = RegSpec::data(14);
  i.ra = RegSpec::data(14);
  i.mode = AddrMode::Immediate;
  i.imm = 8;
  i.pos = 0;
  i.width = 5;
  EXPECT_EQ(disassemble(i), "INSERT d14, d14, 0x8, 0, 5");
}

TEST(Disassemble, MemoryForms) {
  Instruction st;
  st.op = Opcode::Store;
  st.ra = RegSpec::data(4);
  st.mode = AddrMode::RegIndirect;
  st.rb = RegSpec::address(4);
  EXPECT_EQ(disassemble(st), "STORE [a4], d4");

  Instruction ld;
  ld.op = Opcode::Load;
  ld.rc = RegSpec::address(12);
  ld.mode = AddrMode::Immediate;
  ld.imm = 0x2000;
  EXPECT_EQ(disassemble(ld), "LOAD a12, 0x2000");
}

TEST(Disassemble, ConditionalBranchSpelling) {
  Instruction j;
  j.op = Opcode::Jmp;
  j.cond = Cond::Nz;
  j.mode = AddrMode::Immediate;
  j.imm = 0x1234;
  EXPECT_EQ(disassemble(j), "JNZ 0x1234");

  j.cond = Cond::Always;
  EXPECT_EQ(disassemble(j), "JMP 0x1234");
}

TEST(Disassemble, CallThroughAddressRegister) {
  Instruction c;
  c.op = Opcode::Call;
  c.mode = AddrMode::Register;
  c.rb = RegSpec::address(12);
  EXPECT_EQ(disassemble(c), "CALL a12");
}

}  // namespace
