// Tests for the `advm lint` static analyzer: CFG reconstruction from
// linked images (src/advm/lint/cfg.h), the six dataflow analyses
// (src/advm/lint/analyses.h) on seeded-defect fixtures, the per-cell
// driver + report plumbing (src/advm/lint/lint.h), the Session verb, the
// stable JSON document — and the zero-false-positive guarantee over a
// freshly generated `advm init` corpus.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "advm/lint/analyses.h"
#include "advm/lint/cfg.h"
#include "advm/lint/lint.h"
#include "advm/report.h"
#include "advm/session.h"
#include "asm/assembler.h"
#include "asm/linker.h"
#include "support/diagnostics.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;

constexpr std::uint32_t kCodeBase = 0x1000;
constexpr std::uint32_t kStep = 12;  ///< isa::kInstrBytes

/// Assembles one in-memory source and links it at the test base.
std::optional<assembler::Image> build_image(const std::string& source) {
  support::VirtualFileSystem vfs;
  support::DiagnosticEngine diags;
  assembler::AssemblerOptions options;
  assembler::Assembler asm_(vfs, diags, options);
  auto result = asm_.assemble_source("/test.asm", source);
  if (!result) {
    ADD_FAILURE() << "assembly failed: " << diags.to_string();
    return std::nullopt;
  }
  std::vector<const assembler::ObjectFile*> objects{&result->object};
  assembler::LinkOptions link_options;
  link_options.code_base = kCodeBase;
  link_options.data_base = 0x8000;
  auto image = assembler::link(objects, link_options, diags);
  if (!image) {
    ADD_FAILURE() << "link failed: " << diags.to_string();
    return std::nullopt;
  }
  return image;
}

std::optional<lint::CodeModel> build_model(const std::string& source) {
  auto image = build_image(source);
  if (!image) return std::nullopt;
  return lint::build_code_model(*image);
}

/// Whole-image analysis run (no scope filter, no ROM windows).
std::vector<lint::Finding> analyze(const std::string& source,
                                   lint::AnalysisConfig config = {}) {
  auto model = build_model(source);
  if (!model) return {};
  return lint::run_analyses(*model, config);
}

std::size_t count_code(const std::vector<lint::Finding>& findings,
                       const char* code) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const lint::Finding& f) { return f.code == code; }));
}

// ------------------------------------------------------------------ CFG ----

TEST(LintCfg, DecodesSlotsOnTheGridAndFindsEntry) {
  auto model = build_model(
      "_main:\n"
      " MOV d0, 1\n"
      " HALT\n");
  ASSERT_TRUE(model);
  ASSERT_EQ(model->regions.size(), 1u);
  EXPECT_EQ(model->entry, kCodeBase);
  EXPECT_EQ(model->regions[0].base, kCodeBase);
  ASSERT_EQ(model->regions[0].slots.size(), 2u);
  EXPECT_TRUE(model->regions[0].slots[0].instr.has_value());
  EXPECT_TRUE(model->regions[0].slots[1].instr.has_value());

  // On-grid lookups resolve; off-grid and out-of-image return null.
  EXPECT_NE(model->slot_at(kCodeBase), nullptr);
  EXPECT_NE(model->slot_at(kCodeBase + kStep), nullptr);
  EXPECT_EQ(model->slot_at(kCodeBase + 4), nullptr);
  EXPECT_EQ(model->slot_at(0), nullptr);
  EXPECT_NE(model->region_of(kCodeBase + 4), nullptr);  // inside, off-grid
}

TEST(LintCfg, ReachabilityFollowsBranchesAndStopsAtHalt) {
  auto model = build_model(
      "_main:\n"
      " JMP over\n"
      " MOV d0, 1\n"  // skipped by the unconditional branch
      "over:\n"
      " HALT\n"
      " MOV d1, 2\n");  // after HALT: nothing falls through
  ASSERT_TRUE(model);
  EXPECT_TRUE(model->slot_at(kCodeBase)->reachable);
  EXPECT_FALSE(model->slot_at(kCodeBase + kStep)->reachable);
  EXPECT_TRUE(model->slot_at(kCodeBase + 2 * kStep)->reachable);
  EXPECT_FALSE(model->slot_at(kCodeBase + 3 * kStep)->reachable);
}

TEST(LintCfg, ConditionalBranchFallsThroughAndCallTargetsBecomeRoots) {
  auto model = build_model(
      "_main:\n"
      " CMP d0, 1\n"
      " JEQ done\n"
      " CALL helper\n"
      "done:\n"
      " HALT\n"
      "helper:\n"
      " RETURN\n");
  ASSERT_TRUE(model);
  // Both sides of the conditional are reachable.
  EXPECT_TRUE(model->slot_at(kCodeBase + 2 * kStep)->reachable);  // CALL
  EXPECT_TRUE(model->slot_at(kCodeBase + 3 * kStep)->reachable);  // done
  // helper's body is reachable purely through the CALL root.
  EXPECT_TRUE(model->slot_at(kCodeBase + 4 * kStep)->reachable);
  ASSERT_EQ(model->roots.size(), 2u);
  EXPECT_EQ(model->roots[0], model->entry);
  EXPECT_EQ(model->roots[1], kCodeBase + 4 * kStep);
}

TEST(LintCfg, AddressTakenCodeBecomesARoot) {
  // The indirect-call pattern the generated corpus uses (CallAddr) and
  // the IRQ-handler installation: the handler is only ever reached
  // through its address, never by a direct branch.
  auto model = build_model(
      "_main:\n"
      " LOAD d5, handler\n"
      " HALT\n"
      "handler:\n"
      " RETI\n");
  ASSERT_TRUE(model);
  EXPECT_TRUE(model->slot_at(kCodeBase + 2 * kStep)->reachable);
  EXPECT_EQ(model->roots.size(), 2u);
}

TEST(LintCfg, SymbolAttributionPicksNearestPrecedingSymbol) {
  auto model = build_model(
      "_main:\n"
      " MOV d0, 1\n"
      " HALT\n"
      "after:\n"
      " HALT\n");
  ASSERT_TRUE(model);
  const auto at_main = model->symbol_before(kCodeBase + kStep);
  ASSERT_TRUE(at_main);
  EXPECT_EQ(at_main->to_string(), "_main+0xc");
  const auto at_after = model->symbol_before(kCodeBase + 2 * kStep);
  ASSERT_TRUE(at_after);
  EXPECT_EQ(at_after->to_string(), "after");
  EXPECT_FALSE(model->symbol_before(kCodeBase - kStep).has_value());
}

TEST(LintCfg, FunctionAddressesStayInsideTheFunction) {
  auto model = build_model(
      "_main:\n"
      " CALL helper\n"
      " HALT\n"
      "helper:\n"
      " MOV d0, 1\n"
      " RETURN\n");
  ASSERT_TRUE(model);
  const auto main_fn = lint::function_addresses(*model, model->entry);
  // CALL falls through to HALT; the callee body is not part of _main.
  EXPECT_EQ(main_fn, (std::vector<std::uint32_t>{kCodeBase,
                                                 kCodeBase + kStep}));
  const auto helper_fn =
      lint::function_addresses(*model, kCodeBase + 2 * kStep);
  EXPECT_EQ(helper_fn.size(), 2u);
}

// ------------------------------------------------------------- analyses ----

TEST(LintAnalyses, UndefRegReadBeforeWriteInEntry) {
  const auto findings = analyze(
      "_main:\n"
      " MOV d1, d3\n"
      " HALT\n");
  ASSERT_EQ(count_code(findings, lint::kUndefReg), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.code == lint::kUndefReg;
      });
  EXPECT_EQ(it->address, kCodeBase);
  EXPECT_EQ(it->symbol, "_main");
  EXPECT_NE(it->detail.find("d3"), std::string::npos);
}

TEST(LintAnalyses, UndefRegJoinIsMayUndefined) {
  // d2 is defined on one path only: still flagged at the join's read.
  const auto findings = analyze(
      "_main:\n"
      " MOV d0, 1\n"
      " CMP d0, 1\n"
      " JEQ skip\n"
      " MOV d2, 5\n"
      "skip:\n"
      " MOV d3, d2\n"
      " HALT\n");
  EXPECT_EQ(count_code(findings, lint::kUndefReg), 1u);
}

TEST(LintAnalyses, UndefRegSilencedByWriteAndByCall) {
  // Written-then-read is clean; a CALL clobber-defines everything, so
  // post-call reads are never flagged (the callee's effect is unknown).
  const auto findings = analyze(
      "_main:\n"
      " MOV d3, 7\n"
      " MOV d1, d3\n"
      " CALL helper\n"
      " MOV d4, d9\n"
      " HALT\n"
      "helper:\n"
      " RETURN\n");
  EXPECT_EQ(count_code(findings, lint::kUndefReg), 0u);
}

TEST(LintAnalyses, DeadStoreOverwrittenWithoutRead) {
  const auto findings = analyze(
      "_main:\n"
      " MOV d5, 7\n"
      " MOV d5, 8\n"
      " MOV d0, d5\n"
      " HALT\n");
  ASSERT_EQ(count_code(findings, lint::kDeadStore), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.code == lint::kDeadStore;
      });
  EXPECT_EQ(it->address, kCodeBase);
  EXPECT_NE(it->detail.find("d5"), std::string::npos);
}

TEST(LintAnalyses, DeadStoreSpardByInterveningReadCallOrExit) {
  // Read between writes, a CALL (may read anything), or function exit
  // (caller may read anything) all keep the first write live.
  const auto findings = analyze(
      "_main:\n"
      " MOV d5, 7\n"
      " MOV d0, d5\n"
      " MOV d5, 8\n"
      " CALL helper\n"
      " MOV d6, 1\n"
      " HALT\n"
      "helper:\n"
      " MOV d7, 3\n"
      " RETURN\n");
  EXPECT_EQ(count_code(findings, lint::kDeadStore), 0u);
}

TEST(LintAnalyses, UnreachableRunReportedOnceWithCount) {
  const auto findings = analyze(
      "_main:\n"
      " JMP over\n"
      " MOV d0, 1\n"
      " MOV d0, 2\n"
      "over:\n"
      " HALT\n");
  ASSERT_EQ(count_code(findings, lint::kUnreachable), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.code == lint::kUnreachable;
      });
  EXPECT_EQ(it->address, kCodeBase + kStep);
  EXPECT_NE(it->detail.find("2 instruction slot(s)"), std::string::npos);
}

TEST(LintAnalyses, UnreachableZeroPaddingIsNotFlagged) {
  // .SPACE / alignment zeros after the code's end are padding, not dead
  // code — trimmed off unreachable runs (and all-zero runs vanish).
  const auto findings = analyze(
      "_main:\n"
      " HALT\n"
      " .SPACE 24\n");
  EXPECT_EQ(count_code(findings, lint::kUnreachable), 0u);
}

TEST(LintAnalyses, IllReachableNonDecodingSlot) {
  const auto findings = analyze(
      "_main:\n"
      " MOV d0, 1\n"
      " .DB 0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0\n"
      "next:\n"
      " HALT\n");
  ASSERT_EQ(count_code(findings, lint::kIllReachable), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.code == lint::kIllReachable;
      });
  EXPECT_EQ(it->address, kCodeBase + kStep);
  EXPECT_NE(it->detail.find("0xee"), std::string::npos);
}

TEST(LintAnalyses, IllReachableMisalignedBranchTarget) {
  const auto findings = analyze(
      "_main:\n"
      " JMP 0x1004\n"
      " HALT\n");
  ASSERT_EQ(count_code(findings, lint::kIllReachable), 1u);
  EXPECT_NE(findings[0].detail.find("0x00001004"), std::string::npos);
}

TEST(LintAnalyses, StoreToCodeIsSmcStoreToRomWindowIsRomWrite) {
  lint::AnalysisConfig config;
  config.rom_base = kCodeBase;
  config.rom_size = 0x2000;  // window [0x1000, 0x3000)
  const auto findings = analyze(
      "_main:\n"
      " MOV d0, 1\n"
      " STORE [0x1000], d0\n"    // inside the code image → SMC
      " STORE [0x2800], d0\n"    // ROM window, not code → rom-write
      " STORE [0x8000], d0\n"    // plain data address → clean
      " HALT\n",
      config);
  EXPECT_EQ(count_code(findings, lint::kSmc), 1u);
  EXPECT_EQ(count_code(findings, lint::kRomWrite), 1u);
}

TEST(LintAnalyses, StackImbalancePushWithoutPopAtReturn) {
  const auto findings = analyze(
      "_main:\n"
      " CALL helper\n"
      " HALT\n"
      "helper:\n"
      " PUSH d0\n"
      " RETURN\n");
  ASSERT_EQ(count_code(findings, lint::kStackImbalance), 1u);
  EXPECT_NE(findings[0].detail.find("RETURN"), std::string::npos);
}

TEST(LintAnalyses, StackImbalancePopBelowEntryDepth) {
  const auto findings = analyze(
      "_main:\n"
      " CALL helper\n"
      " HALT\n"
      "helper:\n"
      " POP d0\n"
      " RETURN\n");
  // The POP below entry depth is one finding; the clamped depth keeps
  // the RETURN itself clean (no cascade).
  ASSERT_EQ(count_code(findings, lint::kStackImbalance), 1u);
  EXPECT_NE(findings[0].detail.find("POP"), std::string::npos);
}

TEST(LintAnalyses, StackImbalanceBalancedPairAndSpManagerAreClean) {
  // A balanced PUSH/POP pair is clean; a function that writes the stack
  // pointer directly manages its own frame and is skipped entirely.
  const auto findings = analyze(
      "_main:\n"
      " CALL balanced\n"
      " CALL manager\n"
      " HALT\n"
      "balanced:\n"
      " PUSH d0\n"
      " POP d1\n"
      " RETURN\n"
      "manager:\n"
      " MOV a10, 0x9000\n"
      " PUSH d0\n"
      " RETURN\n");
  EXPECT_EQ(count_code(findings, lint::kStackImbalance), 0u);
}

TEST(LintAnalyses, FindingsAreSortedAndDeduplicated) {
  const auto findings = analyze(
      "_main:\n"
      " MOV d1, d3\n"
      " MOV d5, 7\n"
      " MOV d5, 8\n"
      " MOV d0, d5\n"
      " HALT\n");
  ASSERT_GE(findings.size(), 2u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].address, findings[i].address);
    EXPECT_FALSE(findings[i - 1].address == findings[i].address &&
                 findings[i - 1].code == findings[i].code &&
                 findings[i - 1].detail == findings[i].detail)
        << "duplicate finding " << findings[i].code;
  }
}

TEST(LintAnalyses, ScopeFilterDropsFindingsOutsideTheScopedObject) {
  auto model = build_model(
      "_main:\n"
      " MOV d1, d3\n"
      " HALT\n");
  ASSERT_TRUE(model);
  lint::AnalysisConfig config;
  config.scope_source = "/some/other/object.asm";
  EXPECT_TRUE(lint::run_analyses(*model, config).empty());
  config.scope_source = "/test.asm";
  EXPECT_EQ(lint::run_analyses(*model, config).size(), 1u);
}

// ------------------------------------------------- driver + session verb ----

/// A Session with the canonical generated tree at /SYS.
void build_canonical_tree(Session& session, std::size_t tests = 2) {
  BuildRequest build;
  build.tests_per_module = tests;
  const BuildResult built = session.run(build);
  ASSERT_TRUE(built.status.ok()) << built.status.message;
}

TEST(LintVerb, GeneratedCorpusHasZeroFindings) {
  // The zero-false-positive guarantee: every analysis must stay silent
  // on the entire shipped `advm init` corpus (all five modules).
  Session session;
  build_canonical_tree(session, 3);
  LintRequest request;
  const LintResult result = session.run(request);
  ASSERT_TRUE(result.status.ok()) << result.status.message;
  EXPECT_EQ(result.report.cells, 15u);
  EXPECT_TRUE(result.report.clean()) << format_lint_report(result.report);
}

TEST(LintVerb, SeededDefectIsAttributedToItsCell) {
  Session session;
  build_canonical_tree(session);
  session.vfs().write("/SYS/PAGE_MODULE/TEST_REGISTER_000/test.asm",
                      ".INCLUDE Globals.inc\n"
                      "_main:\n"
                      " MOV d1, d3\n"
                      " CALL Base_Report_Pass\n");
  const LintResult result = session.run(LintRequest{});
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.report.findings.size(), 1u);
  const LintFinding& f = result.report.findings[0];
  EXPECT_EQ(f.code, lint::kUndefReg);
  EXPECT_EQ(f.environment, "PAGE_MODULE");
  EXPECT_EQ(f.test_id, "TEST_REGISTER_000");
  EXPECT_EQ(f.file, "PAGE_MODULE/TEST_REGISTER_000/test.asm");
  EXPECT_EQ(f.symbol, "_main");
  EXPECT_EQ(result.report.count(lint::kUndefReg), 1u);
  EXPECT_EQ(result.report.by_code().at(lint::kUndefReg), 1u);
}

TEST(LintVerb, LibraryFindingsAreScopedOutOfEveryCell) {
  // A defect seeded into a *shared* library must not be attributed to
  // the test cells that link it (it would repeat once per cell).
  Session session;
  build_canonical_tree(session);
  const std::string path =
      "/SYS/PAGE_MODULE/Abstraction_Layer/base_functions.asm";
  const auto source = session.vfs().read(path);
  ASSERT_TRUE(source);
  session.vfs().write(path, *source +
                                "\nLint_Dead_Code:\n MOV d1, d3\n RETURN\n");
  const LintResult result = session.run(LintRequest{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.report.clean()) << format_lint_report(result.report);
}

TEST(LintVerb, UnbuildableCellIsItsOwnFinding) {
  Session session;
  build_canonical_tree(session);
  session.vfs().write("/SYS/PAGE_MODULE/TEST_REGISTER_000/test.asm",
                      "_main:\n MOV d1,\n");
  const LintResult result = session.run(LintRequest{});
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.report.findings.size(), 1u);
  EXPECT_EQ(result.report.findings[0].code, kLintUnbuildable);
  EXPECT_EQ(result.report.findings[0].address, 0u);
}

TEST(LintVerb, ParallelLintIsIdenticalToSerial) {
  SessionConfig parallel_config;
  parallel_config.jobs = 8;
  Session serial;
  Session parallel(parallel_config);
  build_canonical_tree(serial);
  build_canonical_tree(parallel);
  const std::string defect =
      ".INCLUDE Globals.inc\n_main:\n MOV d1, d3\n MOV d5, 7\n MOV d5, 8\n"
      " MOV d0, d5\n CALL Base_Report_Pass\n";
  serial.vfs().write("/SYS/MEM_MODULE/TEST_MEMORY_000/test.asm", defect);
  parallel.vfs().write("/SYS/MEM_MODULE/TEST_MEMORY_000/test.asm", defect);
  const LintResult a = serial.run(LintRequest{});
  const LintResult b = parallel.run(LintRequest{});
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(format_lint_report(a.report), format_lint_report(b.report));
}

TEST(LintVerb, ValidationFailuresComeBackTyped) {
  Session session;
  LintRequest unknown;
  unknown.derivative = "NO-SUCH";
  EXPECT_EQ(session.run(unknown).status.code, "advm.unknown-derivative");
  LintRequest missing;
  missing.root = "/nowhere";
  EXPECT_EQ(session.run(missing).status.code, "advm.bad-root");
}

// -------------------------------------------------------- JSON contract ----

TEST(LintReportJson, DocumentShapeIsStable) {
  Session session;
  build_canonical_tree(session);
  session.vfs().write("/SYS/PAGE_MODULE/TEST_REGISTER_000/test.asm",
                      ".INCLUDE Globals.inc\n"
                      "_main:\n"
                      " MOV d1, d3\n"
                      " CALL Base_Report_Pass\n");
  const LintResult result = session.run(LintRequest{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(
      to_json(result),
      "{\"ok\":true,\"verb\":\"lint\",\"clean\":false,\"count\":1,"
      "\"cells\":10,\"findings\":[{\"code\":\"advm.lint-undef-reg\","
      "\"environment\":\"PAGE_MODULE\",\"test\":\"TEST_REGISTER_000\","
      "\"file\":\"PAGE_MODULE/TEST_REGISTER_000/test.asm\","
      "\"address\":4096,\"symbol\":\"_main\",\"detail\":\"register d3 may"
      " be read before it is written\"}],"
      "\"by_code\":{\"advm.lint-undef-reg\":1}}");
}

TEST(LintReportJson, ErrorDocumentSharesTheVerbContract) {
  Session session;
  LintRequest missing;
  missing.root = "/nowhere";
  const LintResult result = session.run(missing);
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"lint\""), std::string::npos);
  EXPECT_NE(json.find("advm.bad-root"), std::string::npos);
}

}  // namespace
