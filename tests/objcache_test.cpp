// Unit tests for the content-addressed object cache: the assemble-once
// guarantee (hit on identical source/options), the invalidation rules
// (changed source, changed include, changed predefine → miss), failure
// caching, and counter determinism under concurrent same-key requests.
#include <gtest/gtest.h>

#include <atomic>

#include "advm/objcache.h"
#include "advm/regression.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;
using assembler::AssemblerOptions;

constexpr const char* kMain = "/src/main.asm";
constexpr const char* kInc = "/src/defs.inc";

support::VirtualFileSystem tiny_program() {
  support::VirtualFileSystem vfs;
  vfs.write(kInc, "MAGIC .EQU 42\n");
  vfs.write(kMain,
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  return vfs;
}

TEST(ObjectCache, SecondIdenticalRequestHitsAndSharesTheObject) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.object.get(), second.object.get());  // shared, not copied

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, first.object->total_bytes());
}

TEST(ObjectCache, SourceEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  vfs.write(kMain, std::string(*vfs.read(kMain)) + " NOP\n");
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.hit);
  EXPECT_NE(first.object->total_bytes(), second.object->total_bytes());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ObjectCache, IncludedFileEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  (void)cache.assemble(vfs, kMain, options);
  vfs.write(kInc, "MAGIC .EQU 43\n");  // same main source, new include text
  auto rebuilt = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.hit);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  // The stale entry was replaced, not leaked: footprint is one object.
  EXPECT_EQ(stats.bytes, rebuilt.object->total_bytes());
}

TEST(ObjectCache, PredefineChangeMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;

  AssemblerOptions a;
  a.predefines["PLATFORM"] = 1;
  AssemblerOptions b;
  b.predefines["PLATFORM"] = 2;

  (void)cache.assemble(vfs, kMain, a);
  auto other = cache.assemble(vfs, kMain, b);

  EXPECT_FALSE(other.hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  // And the original option set still hits its own entry.
  EXPECT_TRUE(cache.assemble(vfs, kMain, a).hit);
}

TEST(ObjectCache, FailedAssemblyIsCachedWithItsDiagnostics) {
  auto vfs = tiny_program();
  vfs.write(kInc, " .ERROR \"broken include\"\n");
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.error, second.error);
  EXPECT_NE(first.error.find("broken include"), std::string::npos);
  // The resolved include list survives failure — callers use it to name
  // the offending file in BUILD-FAIL records.
  ASSERT_TRUE(first.includes != nullptr);
  ASSERT_FALSE(first.includes->empty());
  EXPECT_EQ(first.includes->front().to_file, kInc);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ObjectCache, MissingFileIsReportedButNeverCached) {
  support::VirtualFileSystem vfs;
  ObjectCache cache;
  AssemblerOptions options;

  auto result = cache.assemble(vfs, "/nope.asm", options);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ObjectCache, NewFileShadowingAnIncludeEarlierInTheSearchPathMisses) {
  // The ccache direct-mode hole, closed: the include resolved from the
  // second search directory at build time; creating the same name in the
  // *first* directory afterwards must invalidate the entry, because a
  // fresh assembly would now resolve the earlier path.
  support::VirtualFileSystem vfs;
  vfs.write("/lib2/defs.inc", "MAGIC .EQU 42\n");
  vfs.write("/cells/T1/test.asm",
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  AssemblerOptions options;
  options.include_dirs = {"/lib1", "/lib2"};

  ObjectCache cache;
  auto first = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);

  // Shadow from the earlier search directory: different MAGIC, different
  // object bytes — serving the cached object would be a wrong answer.
  vfs.write("/lib1/defs.inc", "MAGIC .EQU 999999\n");
  auto shadowed = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(shadowed.ok());
  EXPECT_FALSE(shadowed.hit);
  ASSERT_FALSE(shadowed.includes->empty());
  EXPECT_EQ(shadowed.includes->front().to_file, "/lib1/defs.inc");

  // A sibling of the including file shadows everything.
  vfs.write("/cells/T1/defs.inc", "MAGIC .EQU 7\n");
  auto sibling = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(sibling.ok());
  EXPECT_FALSE(sibling.hit);
  EXPECT_EQ(sibling.includes->front().to_file, "/cells/T1/defs.inc");

  // Steady state: with no new shadow appearing, hits resume.
  EXPECT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);
}

TEST(ObjectCache, CachedIncludeNotFoundFailureInvalidatesWhenFileAppears) {
  // The failure arm of shadow detection: an include missing everywhere is
  // a cached BUILD-FAIL; creating the file at any probed candidate —
  // including the absolute path itself — must invalidate the entry, or a
  // regenerate-in-place workflow keeps reporting the stale failure.
  support::VirtualFileSystem vfs;
  vfs.write("/cells/T1/test.asm",
            " .INCLUDE \"/lib/abs_defs.inc\"\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, "/cells/T1/test.asm", options);
  EXPECT_FALSE(first.ok());
  EXPECT_NE(first.error.find("cannot find include"), std::string::npos);
  EXPECT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);

  vfs.write("/lib/abs_defs.inc", "MAGIC .EQU 42\n");
  auto repaired = cache.assemble(vfs, "/cells/T1/test.asm", options);
  EXPECT_FALSE(repaired.hit);
  EXPECT_TRUE(repaired.ok()) << repaired.error;
}

TEST(ObjectCache, ByteBudgetEvictsLeastRecentlyUsedEntries) {
  support::VirtualFileSystem vfs;
  const char* files[] = {"/src/a.asm", "/src/b.asm", "/src/c.asm"};
  for (const char* path : files) {
    vfs.write(path, std::string("_main:\n MOV d0, 1\n HALT\n"));
  }
  AssemblerOptions options;

  // Budget fits roughly one object: every new build evicts the oldest.
  ObjectCache unbounded;
  auto probe = unbounded.assemble(vfs, files[0], options);
  ASSERT_TRUE(probe.ok());
  const std::uint64_t one = probe.object->total_bytes();
  ASSERT_GT(one, 0u);

  ObjectCache cache(one + one / 2);
  EXPECT_EQ(cache.max_bytes(), one + one / 2);
  ASSERT_TRUE(cache.assemble(vfs, files[0], options).ok());  // a
  ASSERT_TRUE(cache.assemble(vfs, files[1], options).ok());  // b evicts a
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, cache.max_bytes());

  // b (still cached) hits; a (evicted) rebuilds.
  EXPECT_TRUE(cache.assemble(vfs, files[1], options).hit);
  EXPECT_FALSE(cache.assemble(vfs, files[0], options).hit);

  // LRU order: b was touched after a's rebuild started… rebuild of a
  // evicted b (the least recently used at that moment).
  stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
}

TEST(ObjectCache, UnboundedCacheNeverEvicts) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.assemble(vfs, kMain, options).ok());
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ObjectCache, ConcurrentSameKeyRequestsBuildOnce) {
  // Whatever the pool size, exactly one request per key may miss — the
  // determinism of the regression report's counters depends on it.
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  std::atomic<int> failures{0};
  parallel_for(32, 8, [&](std::size_t) {
    auto result = cache.assemble(vfs, kMain, options);
    if (!result.ok()) failures.fetch_add(1);
  });

  EXPECT_EQ(failures.load(), 0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 31u);
}

}  // namespace
