// Unit tests for the content-addressed object cache: the assemble-once
// guarantee (hit on identical source/options), the invalidation rules
// (changed source, changed include, changed predefine → miss), failure
// caching, and counter determinism under concurrent same-key requests.
#include <gtest/gtest.h>

#include <atomic>

#include "advm/objcache.h"
#include "advm/regression.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;
using assembler::AssemblerOptions;

constexpr const char* kMain = "/src/main.asm";
constexpr const char* kInc = "/src/defs.inc";

support::VirtualFileSystem tiny_program() {
  support::VirtualFileSystem vfs;
  vfs.write(kInc, "MAGIC .EQU 42\n");
  vfs.write(kMain,
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  return vfs;
}

TEST(ObjectCache, SecondIdenticalRequestHitsAndSharesTheObject) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.object.get(), second.object.get());  // shared, not copied

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, first.object->total_bytes());
}

TEST(ObjectCache, SourceEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  vfs.write(kMain, std::string(*vfs.read(kMain)) + " NOP\n");
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.hit);
  EXPECT_NE(first.object->total_bytes(), second.object->total_bytes());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ObjectCache, IncludedFileEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  (void)cache.assemble(vfs, kMain, options);
  vfs.write(kInc, "MAGIC .EQU 43\n");  // same main source, new include text
  auto rebuilt = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.hit);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  // The stale entry was replaced, not leaked: footprint is one object.
  EXPECT_EQ(stats.bytes, rebuilt.object->total_bytes());
}

TEST(ObjectCache, PredefineChangeMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;

  AssemblerOptions a;
  a.predefines["PLATFORM"] = 1;
  AssemblerOptions b;
  b.predefines["PLATFORM"] = 2;

  (void)cache.assemble(vfs, kMain, a);
  auto other = cache.assemble(vfs, kMain, b);

  EXPECT_FALSE(other.hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  // And the original option set still hits its own entry.
  EXPECT_TRUE(cache.assemble(vfs, kMain, a).hit);
}

TEST(ObjectCache, FailedAssemblyIsCachedWithItsDiagnostics) {
  auto vfs = tiny_program();
  vfs.write(kInc, " .ERROR \"broken include\"\n");
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.error, second.error);
  EXPECT_NE(first.error.find("broken include"), std::string::npos);
  // The resolved include list survives failure — callers use it to name
  // the offending file in BUILD-FAIL records.
  ASSERT_TRUE(first.includes != nullptr);
  ASSERT_FALSE(first.includes->empty());
  EXPECT_EQ(first.includes->front().to_file, kInc);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ObjectCache, MissingFileIsReportedButNeverCached) {
  support::VirtualFileSystem vfs;
  ObjectCache cache;
  AssemblerOptions options;

  auto result = cache.assemble(vfs, "/nope.asm", options);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ObjectCache, ConcurrentSameKeyRequestsBuildOnce) {
  // Whatever the pool size, exactly one request per key may miss — the
  // determinism of the regression report's counters depends on it.
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  std::atomic<int> failures{0};
  parallel_for(32, 8, [&](std::size_t) {
    auto result = cache.assemble(vfs, kMain, options);
    if (!result.ok()) failures.fetch_add(1);
  });

  EXPECT_EQ(failures.load(), 0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 31u);
}

}  // namespace
