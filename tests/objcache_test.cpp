// Unit tests for the content-addressed object cache: the assemble-once
// guarantee (hit on identical source/options), the invalidation rules
// (changed source, changed include, changed predefine → miss), failure
// caching, and counter determinism under concurrent same-key requests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "advm/objcache.h"
#include "advm/objstore.h"
#include "advm/regression.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;
using assembler::AssemblerOptions;

constexpr const char* kMain = "/src/main.asm";
constexpr const char* kInc = "/src/defs.inc";

support::VirtualFileSystem tiny_program() {
  support::VirtualFileSystem vfs;
  vfs.write(kInc, "MAGIC .EQU 42\n");
  vfs.write(kMain,
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  return vfs;
}

TEST(ObjectCache, SecondIdenticalRequestHitsAndSharesTheObject) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.object.get(), second.object.get());  // shared, not copied

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, first.object->total_bytes());
}

TEST(ObjectCache, SourceEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  vfs.write(kMain, std::string(*vfs.read(kMain)) + " NOP\n");
  auto second = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.hit);
  EXPECT_NE(first.object->total_bytes(), second.object->total_bytes());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ObjectCache, IncludedFileEditMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  (void)cache.assemble(vfs, kMain, options);
  vfs.write(kInc, "MAGIC .EQU 43\n");  // same main source, new include text
  auto rebuilt = cache.assemble(vfs, kMain, options);

  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.hit);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  // The stale entry was replaced, not leaked: footprint is one object.
  EXPECT_EQ(stats.bytes, rebuilt.object->total_bytes());
}

TEST(ObjectCache, PredefineChangeMisses) {
  auto vfs = tiny_program();
  ObjectCache cache;

  AssemblerOptions a;
  a.predefines["PLATFORM"] = 1;
  AssemblerOptions b;
  b.predefines["PLATFORM"] = 2;

  (void)cache.assemble(vfs, kMain, a);
  auto other = cache.assemble(vfs, kMain, b);

  EXPECT_FALSE(other.hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  // And the original option set still hits its own entry.
  EXPECT_TRUE(cache.assemble(vfs, kMain, a).hit);
}

TEST(ObjectCache, FailedAssemblyIsCachedWithItsDiagnostics) {
  auto vfs = tiny_program();
  vfs.write(kInc, " .ERROR \"broken include\"\n");
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, kMain, options);
  auto second = cache.assemble(vfs, kMain, options);

  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.error, second.error);
  EXPECT_NE(first.error.find("broken include"), std::string::npos);
  // The resolved include list survives failure — callers use it to name
  // the offending file in BUILD-FAIL records.
  ASSERT_TRUE(first.includes != nullptr);
  ASSERT_FALSE(first.includes->empty());
  EXPECT_EQ(first.includes->front().to_file, kInc);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ObjectCache, MissingFileIsReportedButNeverCached) {
  support::VirtualFileSystem vfs;
  ObjectCache cache;
  AssemblerOptions options;

  auto result = cache.assemble(vfs, "/nope.asm", options);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ObjectCache, NewFileShadowingAnIncludeEarlierInTheSearchPathMisses) {
  // The ccache direct-mode hole, closed: the include resolved from the
  // second search directory at build time; creating the same name in the
  // *first* directory afterwards must invalidate the entry, because a
  // fresh assembly would now resolve the earlier path.
  support::VirtualFileSystem vfs;
  vfs.write("/lib2/defs.inc", "MAGIC .EQU 42\n");
  vfs.write("/cells/T1/test.asm",
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  AssemblerOptions options;
  options.include_dirs = {"/lib1", "/lib2"};

  ObjectCache cache;
  auto first = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);

  // Shadow from the earlier search directory: different MAGIC, different
  // object bytes — serving the cached object would be a wrong answer.
  vfs.write("/lib1/defs.inc", "MAGIC .EQU 999999\n");
  auto shadowed = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(shadowed.ok());
  EXPECT_FALSE(shadowed.hit);
  ASSERT_FALSE(shadowed.includes->empty());
  EXPECT_EQ(shadowed.includes->front().to_file, "/lib1/defs.inc");

  // A sibling of the including file shadows everything.
  vfs.write("/cells/T1/defs.inc", "MAGIC .EQU 7\n");
  auto sibling = cache.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(sibling.ok());
  EXPECT_FALSE(sibling.hit);
  EXPECT_EQ(sibling.includes->front().to_file, "/cells/T1/defs.inc");

  // Steady state: with no new shadow appearing, hits resume.
  EXPECT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);
}

TEST(ObjectCache, CachedIncludeNotFoundFailureInvalidatesWhenFileAppears) {
  // The failure arm of shadow detection: an include missing everywhere is
  // a cached BUILD-FAIL; creating the file at any probed candidate —
  // including the absolute path itself — must invalidate the entry, or a
  // regenerate-in-place workflow keeps reporting the stale failure.
  support::VirtualFileSystem vfs;
  vfs.write("/cells/T1/test.asm",
            " .INCLUDE \"/lib/abs_defs.inc\"\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  ObjectCache cache;
  AssemblerOptions options;

  auto first = cache.assemble(vfs, "/cells/T1/test.asm", options);
  EXPECT_FALSE(first.ok());
  EXPECT_NE(first.error.find("cannot find include"), std::string::npos);
  EXPECT_TRUE(cache.assemble(vfs, "/cells/T1/test.asm", options).hit);

  vfs.write("/lib/abs_defs.inc", "MAGIC .EQU 42\n");
  auto repaired = cache.assemble(vfs, "/cells/T1/test.asm", options);
  EXPECT_FALSE(repaired.hit);
  EXPECT_TRUE(repaired.ok()) << repaired.error;
}

TEST(ObjectCache, ByteBudgetEvictsLeastRecentlyUsedEntries) {
  support::VirtualFileSystem vfs;
  const char* files[] = {"/src/a.asm", "/src/b.asm", "/src/c.asm"};
  for (const char* path : files) {
    vfs.write(path, std::string("_main:\n MOV d0, 1\n HALT\n"));
  }
  AssemblerOptions options;

  // Budget fits roughly one object: every new build evicts the oldest.
  ObjectCache unbounded;
  auto probe = unbounded.assemble(vfs, files[0], options);
  ASSERT_TRUE(probe.ok());
  const std::uint64_t one = probe.object->total_bytes();
  ASSERT_GT(one, 0u);

  ObjectCache cache(one + one / 2);
  EXPECT_EQ(cache.max_bytes(), one + one / 2);
  ASSERT_TRUE(cache.assemble(vfs, files[0], options).ok());  // a
  ASSERT_TRUE(cache.assemble(vfs, files[1], options).ok());  // b evicts a
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, cache.max_bytes());

  // b (still cached) hits; a (evicted) rebuilds.
  EXPECT_TRUE(cache.assemble(vfs, files[1], options).hit);
  EXPECT_FALSE(cache.assemble(vfs, files[0], options).hit);

  // LRU order: b was touched after a's rebuild started… rebuild of a
  // evicted b (the least recently used at that moment).
  stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
}

TEST(ObjectCache, UnboundedCacheNeverEvicts) {
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.assemble(vfs, kMain, options).ok());
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ObjectCache, ConcurrentSameKeyRequestsBuildOnce) {
  // Whatever the pool size, exactly one request per key may miss — the
  // determinism of the regression report's counters depends on it.
  auto vfs = tiny_program();
  ObjectCache cache;
  AssemblerOptions options;

  std::atomic<int> failures{0};
  parallel_for(32, 8, [&](std::size_t) {
    auto result = cache.assemble(vfs, kMain, options);
    if (!result.ok()) failures.fetch_add(1);
  });

  EXPECT_EQ(failures.load(), 0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 31u);
}

// ----------------------------------------------------- persistent tier ----

/// Fresh scratch directory on the host filesystem, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("advm_objcache_") + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST(PersistentObjectCache, WarmStartAcrossTwoCacheLifetimes) {
  ScratchDir scratch("warm");
  auto vfs = tiny_program();
  AssemblerOptions options;

  std::uint64_t cold_bytes = 0;
  {
    ObjectCache first(0, scratch.path());
    auto built = first.assemble(vfs, kMain, options);
    ASSERT_TRUE(built.ok());
    cold_bytes = built.object->total_bytes();
    auto stats = first.stats();
    EXPECT_EQ(stats.persistent_hits, 0u);
    EXPECT_EQ(stats.persistent_stores, 1u);
  }

  // Second lifetime, same directory: the in-memory miss is served from
  // disk — same object bytes, no rebuild.
  ObjectCache second(0, scratch.path());
  auto warmed = second.assemble(vfs, kMain, options);
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(warmed.object->total_bytes(), cold_bytes);
  auto stats = second.stats();
  EXPECT_EQ(stats.misses, 1u);  // still an in-memory miss...
  EXPECT_EQ(stats.persistent_hits, 1u);  // ...but satisfied from disk
  EXPECT_EQ(stats.persistent_stores, 0u);  // nothing re-published

  // And the adopted entry serves in-memory hits from then on.
  EXPECT_TRUE(second.assemble(vfs, kMain, options).hit);
}

TEST(PersistentObjectCache, ChangedIncludeInvalidatesDiskEntry) {
  ScratchDir scratch("deps");
  auto vfs = tiny_program();
  AssemblerOptions options;
  {
    ObjectCache first(0, scratch.path());
    ASSERT_TRUE(first.assemble(vfs, kMain, options).ok());
  }

  // Same source text, different include content: the disk entry's deps
  // digest no longer matches — rebuild, then re-publish.
  vfs.write(kInc, "MAGIC .EQU 43\n");
  ObjectCache second(0, scratch.path());
  ASSERT_TRUE(second.assemble(vfs, kMain, options).ok());
  auto stats = second.stats();
  EXPECT_EQ(stats.persistent_hits, 0u);
  EXPECT_EQ(stats.persistent_stores, 1u);
}

TEST(PersistentObjectCache, NewShadowingFileInvalidatesDiskEntry) {
  // The probed-miss record must survive the disk round trip: a file
  // created at a search-path candidate probed (and missing) at build time
  // makes the persisted entry stale exactly like an in-memory one.
  ScratchDir scratch("shadow");
  support::VirtualFileSystem vfs;
  vfs.write("/lib2/defs.inc", "MAGIC .EQU 42\n");
  vfs.write("/cells/T1/test.asm",
            " .INCLUDE defs.inc\n"
            "_main:\n"
            " MOV d0, MAGIC\n"
            " HALT\n");
  AssemblerOptions options;
  options.include_dirs = {"/lib1", "/lib2"};
  {
    ObjectCache first(0, scratch.path());
    ASSERT_TRUE(first.assemble(vfs, "/cells/T1/test.asm", options).ok());
  }

  vfs.write("/lib1/defs.inc", "MAGIC .EQU 999999\n");
  ObjectCache second(0, scratch.path());
  auto rebuilt = second.assemble(vfs, "/cells/T1/test.asm", options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(second.stats().persistent_hits, 0u);
  ASSERT_FALSE(rebuilt.includes->empty());
  EXPECT_EQ(rebuilt.includes->front().to_file, "/lib1/defs.inc");
}

TEST(PersistentObjectCache, CorruptedOrTruncatedEntryFallsBackToMiss) {
  ScratchDir scratch("corrupt");
  auto vfs = tiny_program();
  AssemblerOptions options;
  {
    ObjectCache first(0, scratch.path());
    ASSERT_TRUE(first.assemble(vfs, kMain, options).ok());
  }

  // Damage every stored entry three ways across iterations: truncated,
  // bit-flipped payload, and garbage header. Each must degrade to a
  // rebuild — never a crash, never a wrong object.
  std::vector<std::filesystem::path> entries;
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch.path())) {
    entries.push_back(entry.path());
  }
  ASSERT_FALSE(entries.empty());
  const auto original =
      [&](const std::filesystem::path& path) -> std::string {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }(entries.front());

  const auto write_bytes = [&](const std::string& bytes) {
    std::ofstream out(entries.front(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  for (const std::string& damaged :
       {original.substr(0, original.size() / 2),
        [&] {
          std::string flipped = original;
          flipped[flipped.size() - 3] ^= static_cast<char>(0xFF);
          return flipped;
        }(),
        std::string("not an advm object"), std::string()}) {
    write_bytes(damaged);
    ObjectCache cache(0, scratch.path());
    auto rebuilt = cache.assemble(vfs, kMain, options);
    ASSERT_TRUE(rebuilt.ok());
    auto stats = cache.stats();
    EXPECT_EQ(stats.persistent_hits, 0u);
    EXPECT_EQ(stats.persistent_stores, 1u);  // repaired on disk
  }

  // The final repair left a valid entry behind.
  ObjectCache cache(0, scratch.path());
  ASSERT_TRUE(cache.assemble(vfs, kMain, options).ok());
  EXPECT_EQ(cache.stats().persistent_hits, 1u);
}

TEST(PersistentObjectCache, StoredObjectRoundTripsExactly) {
  auto vfs = tiny_program();
  AssemblerOptions options;
  ScratchDir scratch("roundtrip");
  ObjectCache cache(0, scratch.path());
  auto built = cache.assemble(vfs, kMain, options);
  ASSERT_TRUE(built.ok());

  StoredObject entry;
  entry.path = kMain;
  entry.source_digest = 1;
  entry.options_digest = 2;
  entry.deps_digest = 3;
  entry.includes = *built.includes;
  entry.probed_misses = {"/a/defs.inc"};
  entry.object = *built.object;

  const std::string bytes = encode_stored_object(entry);
  const auto decoded = decode_stored_object(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->path, entry.path);
  EXPECT_EQ(decoded->deps_digest, entry.deps_digest);
  EXPECT_EQ(decoded->probed_misses, entry.probed_misses);
  ASSERT_EQ(decoded->includes.size(), entry.includes.size());
  EXPECT_EQ(decoded->object.name, entry.object.name);
  ASSERT_EQ(decoded->object.sections.size(), entry.object.sections.size());
  for (std::size_t i = 0; i < entry.object.sections.size(); ++i) {
    EXPECT_EQ(decoded->object.sections[i].bytes,
              entry.object.sections[i].bytes);
    EXPECT_EQ(decoded->object.sections[i].org, entry.object.sections[i].org);
  }
  EXPECT_EQ(decoded->object.symbols.size(), entry.object.symbols.size());
  EXPECT_EQ(decoded->object.relocations.size(),
            entry.object.relocations.size());

  // Truncation at every prefix length parses to nullopt, never UB.
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    EXPECT_FALSE(decode_stored_object(bytes.substr(0, n)).has_value());
  }
}

TEST(PersistentObjectCache, ConcurrentWritersPublishWholeEntries) {
  // Shard workers share one cache directory with no coordination beyond
  // atomic renames: racing same-key writers must leave a complete entry
  // (any of theirs) and no torn files behind.
  ScratchDir scratch("race");
  auto vfs = tiny_program();
  AssemblerOptions options;

  constexpr int kWriters = 8;
  std::vector<std::unique_ptr<ObjectCache>> caches;
  for (int i = 0; i < kWriters; ++i) {
    caches.push_back(std::make_unique<ObjectCache>(0, scratch.path()));
  }
  std::atomic<int> failures{0};
  parallel_for(kWriters, kWriters, [&](std::size_t i) {
    if (!caches[i]->assemble(vfs, kMain, options).ok()) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);

  // No temp droppings; exactly one entry file; it decodes.
  std::size_t entry_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch.path())) {
    EXPECT_EQ(entry.path().extension(), ".advmobj")
        << "leftover temp file " << entry.path();
    ++entry_files;
  }
  EXPECT_EQ(entry_files, 1u);
  ObjectCache reader(0, scratch.path());
  ASSERT_TRUE(reader.assemble(vfs, kMain, options).ok());
  EXPECT_EQ(reader.stats().persistent_hits, 1u);
}

TEST(PersistentObjectCache, ByteBudgetSpansBothTiers) {
  ScratchDir scratch("budget");
  support::VirtualFileSystem vfs;
  for (const char* path : {"/src/a.asm", "/src/b.asm", "/src/c.asm"}) {
    vfs.write(path, std::string("_main:\n MOV d0, 1\n HALT\n"));
  }
  AssemblerOptions options;

  std::uint64_t one_object = 0;
  {
    ObjectCache probe;
    one_object = probe.assemble(vfs, "/src/a.asm", options)
                     .object->total_bytes();
  }

  // Budget for two objects across memory + disk: after the third build
  // something must have given — and the combined footprint must fit.
  ObjectCache cache(2 * one_object, scratch.path());
  for (const char* path : {"/src/a.asm", "/src/b.asm", "/src/c.asm"}) {
    ASSERT_TRUE(cache.assemble(vfs, path, options).ok());
  }
  auto stats = cache.stats();
  EXPECT_LE(stats.bytes + cache.disk_store()->disk_bytes(),
            2 * one_object);
  EXPECT_GT(stats.evictions + stats.persistent_evictions, 0u);
}

}  // namespace
