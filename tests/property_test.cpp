// Property-based suites and failure injection across the substrate.
//
//  * disassembler round-trip: encode → disassemble → reassemble → identical
//    bytes, swept across the operand space;
//  * ALU flag semantics checked against a 64-bit reference model over a
//    value lattice;
//  * INSERT/EXTRACT algebra: extract-after-insert recovers the field,
//    untouched bits survive, across the full legal (pos,width) lattice;
//  * failure injection: stack underflow/overflow, wild jumps, ROM writes,
//    double faults, interrupt livelock, include-depth bombs — every crash
//    path must end in a *defined* stop reason, never UB.
#include <gtest/gtest.h>

#include "advm/environment.h"
#include "advm/regression.h"
#include "asm/assembler.h"
#include "asm/linker.h"
#include "isa/instruction.h"
#include "sim/bus.h"
#include "sim/machine.h"
#include "soc/derivative.h"
#include "support/diagnostics.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using advm::isa::AddrMode;
using advm::isa::Cond;
using advm::isa::Instruction;
using advm::isa::Opcode;
using advm::isa::RegSpec;
using advm::support::DiagnosticEngine;
using advm::support::VirtualFileSystem;

// ----------------------------------------- disassembler round-trip sweep ---

/// Builds a spread of legal instructions per opcode: several operand
/// assignments each, enough to cover every addressing mode and field shape.
std::vector<Instruction> instruction_space() {
  std::vector<Instruction> out;
  auto add = [&](Instruction i) { out.push_back(i); };

  for (auto op : {Opcode::Nop, Opcode::Halt, Opcode::Return, Opcode::Reti,
                  Opcode::Disable, Opcode::Enable}) {
    Instruction i;
    i.op = op;
    add(i);
  }
  // MOV / LOAD: immediate, register, memory forms.
  for (auto op : {Opcode::Mov, Opcode::Load}) {
    Instruction i;
    i.op = op;
    i.rc = RegSpec::data(3);
    i.mode = AddrMode::Immediate;
    i.imm = 0xDEAD'BEEF;
    add(i);
    i.mode = AddrMode::Register;
    i.rb = RegSpec::data(9);
    i.imm = 0;
    add(i);
    if (op == Opcode::Load) {
      i.mode = AddrMode::Absolute;
      i.rb.reset();
      i.imm = 0xE000'0000;
      add(i);
      i.mode = AddrMode::RegIndirect;
      i.rb = RegSpec::address(4);
      i.imm = 0;
      add(i);
      i.mode = AddrMode::RegIndirectOff;
      i.imm = 0x40;
      add(i);
    }
  }
  // STORE memory forms.
  {
    Instruction i;
    i.op = Opcode::Store;
    i.ra = RegSpec::data(7);
    i.mode = AddrMode::Absolute;
    i.imm = 0x1234;
    add(i);
    i.mode = AddrMode::RegIndirect;
    i.rb = RegSpec::address(10);
    i.imm = 0;
    add(i);
    i.mode = AddrMode::RegIndirectOff;
    i.imm = 8;
    add(i);
  }
  // Three-operand ALU, both source modes.
  for (auto op : {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                  Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Shl,
                  Opcode::Shr, Opcode::Sar}) {
    Instruction i;
    i.op = op;
    i.rc = RegSpec::data(1);
    i.ra = RegSpec::data(2);
    i.mode = AddrMode::Immediate;
    i.imm = 17;
    add(i);
    i.mode = AddrMode::Register;
    i.rb = RegSpec::data(5);
    i.imm = 0;
    add(i);
  }
  // CMP, NOT, PUSH, POP.
  {
    Instruction i;
    i.op = Opcode::Cmp;
    i.ra = RegSpec::data(0);
    i.mode = AddrMode::Immediate;
    i.imm = 99;
    add(i);
    Instruction n;
    n.op = Opcode::Not;
    n.rc = RegSpec::data(1);
    n.ra = RegSpec::data(2);
    add(n);
    Instruction p;
    p.op = Opcode::Push;
    p.ra = RegSpec::data(4);
    add(p);
    Instruction q;
    q.op = Opcode::Pop;
    q.rc = RegSpec::data(4);
    add(q);
  }
  // INSERT/EXTRACT over a few geometries.
  for (int pos : {0, 1, 5, 27}) {
    Instruction i;
    i.op = Opcode::Insert;
    i.rc = RegSpec::data(14);
    i.ra = RegSpec::data(14);
    i.mode = AddrMode::Immediate;
    i.imm = 8;
    i.pos = static_cast<std::uint8_t>(pos);
    i.width = 5;
    add(i);
    Instruction e;
    e.op = Opcode::Extract;
    e.rc = RegSpec::data(2);
    e.ra = RegSpec::data(14);
    e.pos = static_cast<std::uint8_t>(pos);
    e.width = 5;
    add(e);
  }
  // Branch family: every condition; direct and indirect.
  for (auto cond : {Cond::Always, Cond::Z, Cond::Nz, Cond::C, Cond::Nc,
                    Cond::N, Cond::Nn, Cond::Lt, Cond::Ge}) {
    Instruction i;
    i.op = Opcode::Jmp;
    i.cond = cond;
    i.imm = 0x2000;
    add(i);
  }
  {
    Instruction i;
    i.op = Opcode::Call;
    i.imm = 0x3000;
    add(i);
    i.imm = 0;
    i.rb = RegSpec::address(12);
    add(i);
    Instruction t;
    t.op = Opcode::Trap;
    t.pos = 5;
    add(t);
    Instruction m;
    m.op = Opcode::Mfcr;
    m.rc = RegSpec::data(0);
    m.pos = 0;  // PSW
    add(m);
    Instruction w;
    w.op = Opcode::Mtcr;
    w.ra = RegSpec::data(0);
    w.pos = 1;  // VTBASE
    add(w);
  }
  return out;
}

class DisassemblerRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DisassemblerRoundTrip, ReassemblingDisassemblyReproducesBytes) {
  const Instruction original = instruction_space()[GetParam()];
  auto bytes = isa::encode(original);
  ASSERT_TRUE(bytes.has_value());

  const std::string text = isa::disassemble(original);

  VirtualFileSystem vfs;
  DiagnosticEngine diags;
  assembler::Assembler asm_driver(vfs, diags, {});
  auto result =
      asm_driver.assemble_source("/rt.asm", "_main: " + text + "\n");
  ASSERT_TRUE(result.has_value()) << text << "\n" << diags.to_string();
  ASSERT_EQ(result->object.sections[0].bytes.size(), isa::kInstrBytes)
      << text;

  isa::EncodedInstr reassembled{};
  std::copy_n(result->object.sections[0].bytes.begin(), isa::kInstrBytes,
              reassembled.begin());
  EXPECT_EQ(reassembled, *bytes) << "disassembly was: " << text;
}

INSTANTIATE_TEST_SUITE_P(
    InstructionSpace, DisassemblerRoundTrip,
    ::testing::Range<std::size_t>(0, instruction_space().size()));

// ------------------------------------------------ ALU flag semantics sweep --

struct AluCase {
  std::uint32_t lhs;
  std::uint32_t rhs;
};

class AluFlagsProperty : public ::testing::TestWithParam<AluCase> {
 protected:
  /// Runs `op d2, d0, d1` on a fresh machine with the given inputs and
  /// returns (result, psw).
  std::pair<std::uint32_t, std::uint32_t> run(Opcode op, std::uint32_t lhs,
                                              std::uint32_t rhs) {
    sim::Bus bus;
    bus.map(0, std::make_unique<sim::Ram>("ram", 0x1000));
    sim::FunctionalTiming timing;
    sim::Machine machine(bus, timing);
    machine.reset(0x100, 0x1000, 0x800);

    Instruction i;
    i.op = op;
    i.rc = RegSpec::data(2);
    i.ra = RegSpec::data(0);
    i.mode = AddrMode::Register;
    i.rb = RegSpec::data(1);
    auto word = isa::encode(i);
    std::vector<std::uint8_t> code(word->begin(), word->end());
    auto halt = isa::encode(Instruction{});  // NOP placeholder
    Instruction h;
    h.op = Opcode::Halt;
    halt = isa::encode(h);
    code.insert(code.end(), halt->begin(), halt->end());
    EXPECT_TRUE(bus.load_bytes(0x100, code));

    machine.set_d(0, lhs);
    machine.set_d(1, rhs);
    auto r = machine.run(4);
    EXPECT_EQ(r.reason, sim::StopReason::Halted);
    return {machine.d(2), machine.psw()};
  }
};

TEST_P(AluFlagsProperty, AddMatchesWideReference) {
  const auto [lhs, rhs] = GetParam();
  auto [result, psw] = run(Opcode::Add, lhs, rhs);
  const std::uint64_t wide = static_cast<std::uint64_t>(lhs) + rhs;
  EXPECT_EQ(result, static_cast<std::uint32_t>(wide));
  EXPECT_EQ((psw & isa::Psw::kCarry) != 0, (wide >> 32) != 0);
  EXPECT_EQ((psw & isa::Psw::kZero) != 0,
            static_cast<std::uint32_t>(wide) == 0);
  const bool lhs_neg = (lhs >> 31) != 0;
  const bool rhs_neg = (rhs >> 31) != 0;
  const bool res_neg = (static_cast<std::uint32_t>(wide) >> 31) != 0;
  EXPECT_EQ((psw & isa::Psw::kOverflow) != 0,
            lhs_neg == rhs_neg && res_neg != lhs_neg);
}

TEST_P(AluFlagsProperty, SubMatchesWideReference) {
  const auto [lhs, rhs] = GetParam();
  auto [result, psw] = run(Opcode::Sub, lhs, rhs);
  EXPECT_EQ(result, lhs - rhs);
  EXPECT_EQ((psw & isa::Psw::kCarry) != 0, lhs < rhs);  // borrow
  EXPECT_EQ((psw & isa::Psw::kNegative) != 0, ((lhs - rhs) >> 31) != 0);
}

TEST_P(AluFlagsProperty, CmpSetsSameFlagsAsSub) {
  const auto [lhs, rhs] = GetParam();
  auto [sub_result, sub_psw] = run(Opcode::Sub, lhs, rhs);
  auto [cmp_result, cmp_psw] = run(Opcode::Cmp, lhs, rhs);
  (void)sub_result;
  EXPECT_EQ(cmp_psw, sub_psw);
  EXPECT_EQ(cmp_result, 0u);  // CMP must not write d2
}

INSTANTIATE_TEST_SUITE_P(
    ValueLattice, AluFlagsProperty,
    ::testing::Values(AluCase{0, 0}, AluCase{1, 1}, AluCase{5, 3},
                      AluCase{3, 5}, AluCase{0xFFFF'FFFF, 1},
                      AluCase{0x7FFF'FFFF, 1}, AluCase{0x8000'0000, 1},
                      AluCase{0x8000'0000, 0x8000'0000},
                      AluCase{0x7FFF'FFFF, 0x7FFF'FFFF},
                      AluCase{0xDEAD'BEEF, 0x1234'5678}));

// ---------------------------------------------- INSERT/EXTRACT properties --

class InsertExtractProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InsertExtractProperty, ExtractAfterInsertRecoversField) {
  const auto [pos, width] = GetParam();
  if (pos + width > 32) GTEST_SKIP() << "illegal geometry";

  sim::Bus bus;
  bus.map(0, std::make_unique<sim::Ram>("ram", 0x1000));
  sim::FunctionalTiming timing;
  sim::Machine machine(bus, timing);

  const std::uint32_t base = 0xCAFE'BABE;
  const std::uint32_t value = 0x5555'5555;
  const std::uint32_t mask =
      width >= 32 ? 0xFFFF'FFFFu : ((1u << width) - 1u);

  Instruction ins;
  ins.op = Opcode::Insert;
  ins.rc = RegSpec::data(1);
  ins.ra = RegSpec::data(0);
  ins.mode = AddrMode::Immediate;
  ins.imm = value;
  ins.pos = static_cast<std::uint8_t>(pos);
  ins.width = static_cast<std::uint8_t>(width);
  Instruction ext;
  ext.op = Opcode::Extract;
  ext.rc = RegSpec::data(2);
  ext.ra = RegSpec::data(1);
  ext.pos = ins.pos;
  ext.width = ins.width;
  Instruction halt;
  halt.op = Opcode::Halt;

  std::vector<std::uint8_t> code;
  for (const Instruction& i : {ins, ext, halt}) {
    auto word = isa::encode(i);
    ASSERT_TRUE(word.has_value());
    code.insert(code.end(), word->begin(), word->end());
  }
  ASSERT_TRUE(bus.load_bytes(0x100, code));
  machine.reset(0x100, 0x1000, 0x800);
  machine.set_d(0, base);
  ASSERT_EQ(machine.run(5).reason, sim::StopReason::Halted);

  // Property 1: extract recovers the inserted field.
  EXPECT_EQ(machine.d(2), value & mask);
  // Property 2: bits outside the field are untouched.
  const std::uint32_t field_mask = mask << pos;
  EXPECT_EQ(machine.d(1) & ~field_mask, base & ~field_mask);
  // Property 3: the machine result equals the C++ reference model.
  EXPECT_EQ(machine.d(1),
            (base & ~field_mask) | ((value & mask) << pos));
}

INSTANTIATE_TEST_SUITE_P(
    GeometryLattice, InsertExtractProperty,
    ::testing::Combine(::testing::Values(0, 1, 4, 7, 15, 27, 31),
                       ::testing::Values(1, 2, 5, 6, 8, 16, 32)));

// ------------------------------------------------------ failure injection --

class FailureInjection : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRamBase = 0x1000;
  static constexpr std::uint32_t kRamSize = 0x8000;

  FailureInjection() {
    bus_.map(kRamBase, std::make_unique<sim::Ram>("ram", kRamSize));
    bus_.map(0xF000'0000, std::make_unique<sim::Rom>("rom", 0x100));
    machine_ = std::make_unique<sim::Machine>(bus_, timing_);
  }

  sim::RunResult run_source(std::string_view source,
                            std::uint64_t max_instr = 200000) {
    DiagnosticEngine diags;
    assembler::Assembler asm_driver(vfs_, diags, {});
    auto obj = asm_driver.assemble_source("/f.asm", source);
    EXPECT_TRUE(obj.has_value()) << diags.to_string();
    std::vector<assembler::ObjectFile> objects{obj->object};
    assembler::LinkOptions lo;
    lo.code_base = kRamBase;
    lo.data_base = kRamBase + 0x4000;
    auto image = assembler::link(objects, lo, diags);
    EXPECT_TRUE(image.has_value()) << diags.to_string();
    for (const auto& seg : image->segments) {
      EXPECT_TRUE(bus_.load_bytes(seg.base, seg.bytes));
    }
    machine_->reset(image->entry, kRamBase + kRamSize,
                    kRamBase + 0x6000);
    return machine_->run(max_instr);
  }

  VirtualFileSystem vfs_;
  sim::Bus bus_;
  sim::FunctionalTiming timing_;
  std::unique_ptr<sim::Machine> machine_;
};

TEST_F(FailureInjection, StackUnderflowIsBusError) {
  // RETURN with an empty stack pops from beyond the RAM window.
  auto r = run_source("_main: RETURN\n");
  EXPECT_EQ(r.reason, sim::StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, sim::TrapVectors::kBusError);
}

TEST_F(FailureInjection, InfiniteRecursionEndsInDefinedFault) {
  // On this flat-RAM board the descending stack ploughs through the vector
  // table and the code itself before leaving the window, so the exact fault
  // sequence is chaotic — but it must end in a *defined* fault stop, never
  // run off or "succeed".
  auto r = run_source("_main: CALL _main\n");
  EXPECT_TRUE(r.reason == sim::StopReason::UnhandledTrap ||
              r.reason == sim::StopReason::DoubleFault)
      << sim::to_string(r.reason);
  EXPECT_TRUE(r.fault_vector.has_value());
}

TEST_F(FailureInjection, RecursionWithRomCodeIsCleanStackOverflow) {
  // With the program counter safe in ROM and the vector table *above* the
  // stack top, the overflow is deterministic: the push below the RAM window
  // bus-errors, and with no handler installed the trap is reported as
  // unhandled (the vector entry is read before the frame push, so this does
  // not escalate to a double fault).
  DiagnosticEngine diags;
  assembler::Assembler asm_driver(vfs_, diags, {});
  auto obj = asm_driver.assemble_source(
      "/r.asm", ".ORG 0xF0000000\n_main: CALL _main\n");
  ASSERT_TRUE(obj.has_value()) << diags.to_string();
  std::vector<assembler::ObjectFile> objects{obj->object};
  auto image = assembler::link(objects, {}, diags);
  ASSERT_TRUE(image.has_value()) << diags.to_string();
  for (const auto& seg : image->segments) {
    ASSERT_TRUE(bus_.load_bytes(seg.base, seg.bytes));
  }
  // Stack starts mid-RAM; vector table sits above it, out of harm's way.
  machine_->reset(image->entry, kRamBase + 0x4000, kRamBase + 0x6000);
  auto r = machine_->run(200000);
  EXPECT_EQ(r.reason, sim::StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, sim::TrapVectors::kBusError);
}

TEST_F(FailureInjection, WildJumpFetchesUnmappedMemory) {
  auto r = run_source("_main: JMP 0xDEAD0000\n");
  EXPECT_EQ(r.reason, sim::StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, sim::TrapVectors::kBusError);
}

TEST_F(FailureInjection, RomWriteIsBusError) {
  auto r = run_source(
      "_main:\n MOV d0, 1\n STORE [0xF0000000], d0\n HALT\n");
  EXPECT_EQ(r.reason, sim::StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, sim::TrapVectors::kBusError);
}

TEST_F(FailureInjection, GarbageExecutionIsIllegalInstruction) {
  // Jump into the data section: zeroed RAM decodes as NOP (opcode 0) — so
  // write a poison word there first and execute it.
  auto r = run_source(
      "_main:\n"
      " MOV d0, 0xEEEEEEEE\n"
      " STORE [0x5000 + 0], d0\n"
      " JMP 0x5000\n");
  EXPECT_EQ(r.reason, sim::StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, sim::TrapVectors::kIllegalInstruction);
}

TEST_F(FailureInjection, BadVectorTableDoubleFaults) {
  // Point VTBASE into unmapped space, then trap.
  auto r = run_source(
      "_main:\n"
      " MOV d0, 0xDEAD0000\n"
      " MTCR VTBASE, d0\n"
      " TRAP 1\n");
  EXPECT_EQ(r.reason, sim::StopReason::DoubleFault);
}

TEST_F(FailureInjection, TrapWithBadStackDoubleFaults) {
  // Valid vector table, but SP points at unmapped memory when the trap
  // tries to push the return context.
  auto r = run_source(
      "_main:\n"
      " LOAD d0, handler\n"
      " STORE [0x7000 + 4 * 8], d0\n"
      " MOV d1, 0x7000\n"
      " MTCR VTBASE, d1\n"
      " LEA a10, 0xDEAD0000\n"
      " TRAP 0\n"
      "handler:\n"
      " RETI\n");
  EXPECT_EQ(r.reason, sim::StopReason::DoubleFault);
}

TEST_F(FailureInjection, UnclearedInterruptLivelockHitsCycleLimit) {
  // A level-sensitive IRQ whose handler never clears the line re-enters
  // forever after each RETI; the instruction budget must stop it.
  sim::Bus bus;
  bus.map(kRamBase, std::make_unique<sim::Ram>("ram", kRamSize));
  sim::Machine machine(bus, timing_);
  struct AlwaysLine0 final : sim::IrqSource {
    [[nodiscard]] std::optional<std::uint8_t> pending_irq() const override {
      return std::uint8_t{0};
    }
  };
  static const AlwaysLine0 always_pending;
  machine.set_irq_source(&always_pending);

  DiagnosticEngine diags;
  assembler::Assembler asm_driver(vfs_, diags, {});
  auto obj = asm_driver.assemble_source(
      "/l.asm",
      "_main:\n"
      " LOAD d0, handler\n"
      " STORE [0x7000 + 4 * 16], d0\n"
      " MOV d1, 0x7000\n"
      " MTCR VTBASE, d1\n"
      " ENABLE\n"
      ".spin: JMP .spin\n"
      "handler:\n"
      " RETI\n");
  ASSERT_TRUE(obj.has_value()) << diags.to_string();
  std::vector<assembler::ObjectFile> objects{obj->object};
  assembler::LinkOptions lo;
  lo.code_base = kRamBase;
  auto image = assembler::link(objects, lo, diags);
  ASSERT_TRUE(image.has_value());
  for (const auto& seg : image->segments) {
    ASSERT_TRUE(bus.load_bytes(seg.base, seg.bytes));
  }
  machine.reset(image->entry, kRamBase + kRamSize, kRamBase + 0x6000);
  auto r = machine.run(5000);
  EXPECT_EQ(r.reason, sim::StopReason::CycleLimit);
}

TEST_F(FailureInjection, IncludeDepthBombRejected) {
  for (int i = 0; i < 50; ++i) {
    vfs_.write("/inc" + std::to_string(i) + ".inc",
               ".INCLUDE inc" + std::to_string(i + 1) + ".inc\n");
  }
  DiagnosticEngine diags;
  assembler::AssemblerOptions options;
  options.include_dirs = {"/"};
  assembler::Assembler asm_driver(vfs_, diags, options);
  auto r = asm_driver.assemble_source("/bomb.asm", ".INCLUDE inc0.inc\n");
  EXPECT_FALSE(r.has_value());
  EXPECT_TRUE(diags.has_code("asm.include-depth"));
}

// -------------------------------------------- regression runner edge cases --

TEST(RunnerEdgeCases, EmptySystemRootYieldsEmptyReport) {
  VirtualFileSystem vfs;
  core::RegressionRunner runner(vfs);
  auto report = runner.run_system("/nothing", soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);
  EXPECT_TRUE(report.records.empty());
  EXPECT_FALSE(report.all_passed());  // an empty regression is not a pass
}

TEST(RunnerEdgeCases, CellWithoutTestSourceIsSkipped) {
  VirtualFileSystem vfs;
  core::SystemConfig config;
  config.environments = {{"PAGE_MODULE", core::ModuleKind::Register, 2, true}};
  auto layout = core::build_system(vfs, config, soc::derivative_a());
  // A stray directory without test.asm (e.g. results dir) must be ignored.
  vfs.write(layout.root + "/PAGE_MODULE/RESULTS/notes.txt", "scratch");
  core::RegressionRunner runner(vfs);
  auto report = runner.run_system(layout.root, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);
  EXPECT_EQ(report.records.size(), 2u);
  EXPECT_TRUE(report.all_passed());
}

TEST(RunnerEdgeCases, CorruptBaseFunctionsFailsEveryCellWithDetail) {
  VirtualFileSystem vfs;
  core::SystemConfig config;
  config.environments = {{"PAGE_MODULE", core::ModuleKind::Register, 3, true}};
  auto layout = core::build_system(vfs, config, soc::derivative_a());
  vfs.write(layout.root + "/PAGE_MODULE/Abstraction_Layer/base_functions.asm",
            "GARBAGE MNEMONIC SOUP\n");
  core::RegressionRunner runner(vfs);
  auto report = runner.run_system(layout.root, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);
  EXPECT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.build_failures(), 3u);
  for (const auto& r : report.records) {
    EXPECT_NE(r.detail.find("base_functions.asm"), std::string::npos);
  }
}

TEST(RunnerEdgeCases, RunawayTestIsStoppedAndFailsCleanly) {
  VirtualFileSystem vfs;
  core::SystemConfig config;
  config.environments = {{"PAGE_MODULE", core::ModuleKind::Register, 1, true}};
  auto layout = core::build_system(vfs, config, soc::derivative_a());
  vfs.write(layout.root + "/PAGE_MODULE/TEST_REGISTER_000/test.asm",
            ".INCLUDE Globals.inc\n_main: JMP _main\n");
  core::RegressionRunner runner(vfs);
  auto report = runner.run_system(layout.root, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel, 10000);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].stop, sim::StopReason::CycleLimit);
  EXPECT_FALSE(report.records[0].passed());
}

}  // namespace
