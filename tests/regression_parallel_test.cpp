// Determinism and coverage tests for the parallel regression executor.
//
// The contract under test: a RegressionRunner with any pool size produces a
// report byte-identical to the serial run — same record order, same
// verdicts, same state digests — because records land in pre-allocated
// slots indexed by discovery order, never by completion order. ADVM's
// revision-controlled regression loop (paper §3) is only trustworthy if a
// faster run can never change the answer.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "advm/environment.h"
#include "advm/regression.h"
#include "soc/derivative.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;

SystemLayout build_test_system(support::VirtualFileSystem& vfs) {
  SystemConfig config;
  config.environments = {
      {"PAGE_MODULE", ModuleKind::Register, 4, true},
      {"UART_MODULE", ModuleKind::Uart, 3, true},
      {"NVM_MODULE", ModuleKind::Nvm, 3, true},
      {"TIMER_MODULE", ModuleKind::Timer, 2, true},
      {"MEM_MODULE", ModuleKind::Memory, 2, true},
  };
  return build_system(vfs, config, soc::derivative_a());
}

// ------------------------------------------------------------ parallel_for --

TEST(ParallelFor, RunsEveryTaskExactlyOnce) {
  for (std::size_t jobs : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                           std::size_t{8}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, ZeroTasksIsANoOp) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(ParallelFor, PropagatesTaskExceptions) {
  EXPECT_THROW(parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

// ------------------------------------------------- serial/parallel parity --

TEST(ParallelRegression, ByteIdenticalReportAcrossAllDerivatives) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    RegressionRunner serial(vfs, 1);
    RegressionRunner parallel(vfs, 8);
    auto serial_report = serial.run_system(layout.root, *spec,
                                           sim::PlatformKind::GoldenModel);
    auto parallel_report = parallel.run_system(layout.root, *spec,
                                               sim::PlatformKind::GoldenModel);

    EXPECT_FALSE(serial_report.records.empty());
    EXPECT_EQ(format_report(serial_report), format_report(parallel_report))
        << spec->name;
    EXPECT_EQ(serial_report.outcome_digest(), parallel_report.outcome_digest())
        << spec->name;
  }
}

TEST(ParallelRegression, OversizedPoolStillDeterministic) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  RegressionRunner serial(vfs, 1);
  RegressionRunner flooded(vfs, 128);  // far more workers than test cells
  auto a = serial.run_system(layout.root, soc::derivative_b(),
                             sim::PlatformKind::RtlSim);
  auto b = flooded.run_system(layout.root, soc::derivative_b(),
                              sim::PlatformKind::RtlSim);
  EXPECT_EQ(format_report(a), format_report(b));
}

TEST(ParallelRegression, EnvironmentRunnerMatchesSerial) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);
  const std::string global_dir = layout.root + "/" + kGlobalLibrariesDir;
  const std::string env_dir = layout.root + "/PAGE_MODULE";

  RegressionRunner serial(vfs, 1);
  RegressionRunner parallel(vfs, 8);
  auto a = serial.run_environment(env_dir, global_dir, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);
  auto b = parallel.run_environment(env_dir, global_dir, soc::derivative_a(),
                                    sim::PlatformKind::GoldenModel);
  EXPECT_FALSE(a.records.empty());
  EXPECT_EQ(format_report(a), format_report(b));
}

// ------------------------------------------------------------ matrix runs --

TEST(ParallelRegression, MatrixMatchesIndividualRuns) {
  // The cached parallel matrix must be indistinguishable from a cold serial
  // run of every cell, on all four derivatives — the determinism contract
  // of the assemble-once pipeline. Each solo run gets a fresh runner (and
  // thus a cold cache) so its report reflects the same assembly work the
  // matrix run performed once.
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  std::vector<MatrixCell> cells;
  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    cells.push_back({spec, sim::PlatformKind::GoldenModel});
    cells.push_back({spec, sim::PlatformKind::Accelerator});
  }

  RegressionRunner runner(vfs, 8);
  auto matrix = runner.run_matrix(layout.root, cells);
  ASSERT_EQ(matrix.size(), cells.size());

  for (std::size_t i = 0; i < cells.size(); ++i) {
    RegressionRunner serial(vfs, 1);
    auto solo = serial.run_system(layout.root, *cells[i].spec,
                                  cells[i].platform);
    EXPECT_EQ(format_report(matrix[i]), format_report(solo))
        << cells[i].spec->name << " cell " << i;
    EXPECT_EQ(matrix[i].outcome_digest(), solo.outcome_digest());
  }
}

TEST(ParallelRegression, WarmRerunIsPureHitsAndDigestStable) {
  // Re-running on the same runner serves every object from the cache —
  // hit/miss counters swap — while the outcome digest must not move.
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  RegressionRunner runner(vfs, 4);
  auto cold = runner.run_system(layout.root, soc::derivative_a(),
                                sim::PlatformKind::GoldenModel);
  auto warm = runner.run_system(layout.root, soc::derivative_a(),
                                sim::PlatformKind::GoldenModel);

  EXPECT_EQ(cold.outcome_digest(), warm.outcome_digest());
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_GT(cold.cache.misses, 0u);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.hits, cold.cache.misses);
  EXPECT_EQ(warm.cache.bytes, cold.cache.bytes);
}

TEST(ParallelRegression, AbstractionEditInvalidatesWarmCache) {
  // Porting-style churn regenerates files in place; the warm cache must
  // notice and re-assemble the affected translation units.
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  RegressionRunner runner(vfs, 4);
  auto before = runner.run_system(layout.root, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);

  const std::string globals =
      layout.root + "/PAGE_MODULE/" + kAbstractionLayerDir + "/Globals.inc";
  vfs.write(globals, vfs.read_required(globals) + "\nEXTRA_DEF .EQU 7\n");

  auto after = runner.run_system(layout.root, soc::derivative_a(),
                                 sim::PlatformKind::GoldenModel);
  // PAGE_MODULE units see a changed include → misses; the rest still hit.
  EXPECT_GT(after.cache.misses, 0u);
  EXPECT_GT(after.cache.hits, 0u);
  EXPECT_EQ(after.passed(), before.passed());
}

TEST(ParallelRegression, SharedObjectBuildFailureNamesOffendingInclude) {
  // When a shared object fails to assemble because of a file it included,
  // the BUILD-FAIL detail must carry the include trail naming that file.
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  const std::string abstraction =
      layout.root + "/PAGE_MODULE/" + kAbstractionLayerDir;
  vfs.write(abstraction + "/Broken.inc", " .ERROR \"deliberately broken\"\n");
  vfs.write(abstraction + "/base_functions.asm",
            " .INCLUDE Globals.inc\n .INCLUDE Broken.inc\n");

  RegressionRunner runner(vfs, 2);
  auto report = runner.run_environment(
      layout.root + "/PAGE_MODULE", layout.root + "/" + kGlobalLibrariesDir,
      soc::derivative_a(), sim::PlatformKind::GoldenModel);

  ASSERT_FALSE(report.records.empty());
  for (const auto& record : report.records) {
    EXPECT_FALSE(record.build_ok);
    EXPECT_NE(record.detail.find("include trail"), std::string::npos)
        << record.detail;
    EXPECT_NE(record.detail.find("Broken.inc"), std::string::npos)
        << record.detail;
  }
}

TEST(ParallelRegression, FreshEnvironmentPassesOnItsOwnDerivative) {
  // Each derivative gets an environment generated for it; the parallel
  // matrix run over (its own derivative × golden model) must be all green.
  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    support::VirtualFileSystem vfs;
    SystemConfig config;
    config.environments = {
        {"PAGE_MODULE", ModuleKind::Register, 3, true},
        {"UART_MODULE", ModuleKind::Uart, 2, true},
    };
    auto layout = build_system(vfs, config, *spec);

    RegressionRunner runner(vfs, 0);  // one worker per hardware thread
    auto reports = runner.run_matrix(
        layout.root, {{spec, sim::PlatformKind::GoldenModel}});
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].all_passed())
        << spec->name << "\n" << format_report(reports[0]);
  }
}

}  // namespace
