// Determinism and coverage tests for the parallel regression executor.
//
// The contract under test: a RegressionRunner with any pool size produces a
// report byte-identical to the serial run — same record order, same
// verdicts, same state digests — because records land in pre-allocated
// slots indexed by discovery order, never by completion order. ADVM's
// revision-controlled regression loop (paper §3) is only trustworthy if a
// faster run can never change the answer.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "advm/environment.h"
#include "advm/regression.h"
#include "soc/derivative.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;

SystemLayout build_test_system(support::VirtualFileSystem& vfs) {
  SystemConfig config;
  config.environments = {
      {"PAGE_MODULE", ModuleKind::Register, 4, true},
      {"UART_MODULE", ModuleKind::Uart, 3, true},
      {"NVM_MODULE", ModuleKind::Nvm, 3, true},
      {"TIMER_MODULE", ModuleKind::Timer, 2, true},
      {"MEM_MODULE", ModuleKind::Memory, 2, true},
  };
  return build_system(vfs, config, soc::derivative_a());
}

// ------------------------------------------------------------ parallel_for --

TEST(ParallelFor, RunsEveryTaskExactlyOnce) {
  for (std::size_t jobs : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                           std::size_t{8}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, ZeroTasksIsANoOp) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(ParallelFor, PropagatesTaskExceptions) {
  EXPECT_THROW(parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

// ------------------------------------------------- serial/parallel parity --

TEST(ParallelRegression, ByteIdenticalReportAcrossAllDerivatives) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    RegressionRunner serial(vfs, 1);
    RegressionRunner parallel(vfs, 8);
    auto serial_report = serial.run_system(layout.root, *spec,
                                           sim::PlatformKind::GoldenModel);
    auto parallel_report = parallel.run_system(layout.root, *spec,
                                               sim::PlatformKind::GoldenModel);

    EXPECT_FALSE(serial_report.records.empty());
    EXPECT_EQ(format_report(serial_report), format_report(parallel_report))
        << spec->name;
    EXPECT_EQ(serial_report.outcome_digest(), parallel_report.outcome_digest())
        << spec->name;
  }
}

TEST(ParallelRegression, OversizedPoolStillDeterministic) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  RegressionRunner serial(vfs, 1);
  RegressionRunner flooded(vfs, 128);  // far more workers than test cells
  auto a = serial.run_system(layout.root, soc::derivative_b(),
                             sim::PlatformKind::RtlSim);
  auto b = flooded.run_system(layout.root, soc::derivative_b(),
                              sim::PlatformKind::RtlSim);
  EXPECT_EQ(format_report(a), format_report(b));
}

TEST(ParallelRegression, EnvironmentRunnerMatchesSerial) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);
  const std::string global_dir = layout.root + "/" + kGlobalLibrariesDir;
  const std::string env_dir = layout.root + "/PAGE_MODULE";

  RegressionRunner serial(vfs, 1);
  RegressionRunner parallel(vfs, 8);
  auto a = serial.run_environment(env_dir, global_dir, soc::derivative_a(),
                                  sim::PlatformKind::GoldenModel);
  auto b = parallel.run_environment(env_dir, global_dir, soc::derivative_a(),
                                    sim::PlatformKind::GoldenModel);
  EXPECT_FALSE(a.records.empty());
  EXPECT_EQ(format_report(a), format_report(b));
}

// ------------------------------------------------------------ matrix runs --

TEST(ParallelRegression, MatrixMatchesIndividualRuns) {
  support::VirtualFileSystem vfs;
  auto layout = build_test_system(vfs);

  std::vector<MatrixCell> cells;
  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    cells.push_back({spec, sim::PlatformKind::GoldenModel});
    cells.push_back({spec, sim::PlatformKind::Accelerator});
  }

  RegressionRunner runner(vfs, 8);
  auto matrix = runner.run_matrix(layout.root, cells);
  ASSERT_EQ(matrix.size(), cells.size());

  RegressionRunner serial(vfs, 1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto solo = serial.run_system(layout.root, *cells[i].spec,
                                  cells[i].platform);
    EXPECT_EQ(format_report(matrix[i]), format_report(solo))
        << cells[i].spec->name << " cell " << i;
    EXPECT_EQ(matrix[i].outcome_digest(), solo.outcome_digest());
  }
}

TEST(ParallelRegression, FreshEnvironmentPassesOnItsOwnDerivative) {
  // Each derivative gets an environment generated for it; the parallel
  // matrix run over (its own derivative × golden model) must be all green.
  for (const soc::DerivativeSpec* spec : soc::all_derivatives()) {
    support::VirtualFileSystem vfs;
    SystemConfig config;
    config.environments = {
        {"PAGE_MODULE", ModuleKind::Register, 3, true},
        {"UART_MODULE", ModuleKind::Uart, 2, true},
    };
    auto layout = build_system(vfs, config, *spec);

    RegressionRunner runner(vfs, 0);  // one worker per hardware thread
    auto reports = runner.run_matrix(
        layout.root, {{spec, sim::PlatformKind::GoldenModel}});
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].all_passed())
        << spec->name << "\n" << format_report(reports[0]);
  }
}

}  // namespace
