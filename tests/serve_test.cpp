// End-to-end suite for `advm serve` — the resident verification daemon —
// and its attach protocol. A real daemon process is spawned per test
// (this very repo's CLI binary, like the exec suite's workers), thin
// clients attach over the unix socket, and the assertions pin the
// contracts ISSUE 8 names: byte-identical report documents between
// attached and local runs, warm second laps, concurrent clients, a
// healthy daemon after a client vanishes mid-request, idle-timeout and
// --stop shutdown that flush the cost model and unlink the socket, the
// stale-socket probe, and the live stats document.
//
// ADVM_CLI_PATH is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advm/exec/workerpool.h"
#include "advm/serve/client.h"
#include "advm/serve/endpoint.h"
#include "advm/serve/frame.h"
#include "advm/serve/service.h"
#include "support/json.h"

namespace {

namespace fs = std::filesystem;
using namespace advm;
using namespace advm::core;

struct CommandResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    scratch_ = fs::temp_directory_path() /
               ("advm_serve_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(scratch_);
    fs::create_directories(scratch_);
    env_dir_ = (scratch_ / "system_env").string();
    socket_path_ = (scratch_ / "daemon.sock").string();
  }

  void TearDown() override {
    stop_daemon();
    fs::remove_all(scratch_);
  }

  /// Runs `advm <args>` to completion, capturing exit code and streams.
  /// Capture files are unique per call — tests run clients concurrently,
  /// and a shared stdout.txt would let one client truncate another's
  /// output mid-slurp.
  CommandResult run_cli(const std::string& args) {
    const int call = next_call_.fetch_add(1);
    const fs::path out = scratch_ / ("stdout." + std::to_string(call));
    const fs::path err = scratch_ / ("stderr." + std::to_string(call));
    const std::string command = std::string("\"") + ADVM_CLI_PATH + "\" " +
                                args + " > \"" + out.string() + "\" 2> \"" +
                                err.string() + "\"";
    const int status = std::system(command.c_str());
    CommandResult result;
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.out = slurp(out);
    result.err = slurp(err);
    return result;
  }

  void make_tree() {
    const auto init =
        run_cli("init \"" + env_dir_ + "\" --derivative SC88-A --tests 2");
    ASSERT_EQ(init.exit_code, 0) << init.err;
  }

  /// Spawns `advm serve --socket <path> <extra>` in the background and
  /// waits until the socket answers a connect.
  void spawn_daemon(const std::string& extra = "") {
    const std::string command = std::string("exec \"") + ADVM_CLI_PATH +
                                "\" serve --socket \"" + socket_path_ +
                                "\" " + extra + " 2> \"" +
                                (scratch_ / "daemon.log").string() + "\"";
    daemon_pid_ = ::fork();
    ASSERT_GE(daemon_pid_, 0);
    if (daemon_pid_ == 0) {
      ::execl("/bin/sh", "sh", "-c", command.c_str(),
              static_cast<char*>(nullptr));
      std::_Exit(127);
    }
    wait_for_daemon();
  }

  void wait_for_daemon() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      int fd = -1;
      if (serve::connect_endpoint(socket_path_, 200, &fd).ok()) {
        ::close(fd);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "daemon never came up on " << socket_path_ << ": "
           << slurp(scratch_ / "daemon.log");
  }

  /// Stops the daemon via --stop and insists on a cooperative exit —
  /// kill_and_reap must never need its SIGKILL escalation here.
  void stop_daemon(bool expect_clean = true) {
    if (daemon_pid_ <= 0) return;
    (void)run_cli("serve --socket \"" + socket_path_ + "\" --stop");
    const exec::ReapOutcome outcome =
        exec::kill_and_reap(daemon_pid_, 10'000);
    daemon_pid_ = -1;
    if (expect_clean) {
      EXPECT_TRUE(outcome.reaped);
      EXPECT_FALSE(outcome.escalated)
          << "daemon had to be SIGKILLed: " << slurp(scratch_ / "daemon.log");
    }
  }

  /// True once the daemon process has exited on its own (idle timeout).
  bool daemon_exited(std::size_t wait_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(wait_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const pid_t reaped = ::waitpid(daemon_pid_, nullptr, WNOHANG);
      if (reaped == daemon_pid_ || (reaped < 0 && errno == ECHILD)) {
        daemon_pid_ = -1;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  std::string attach_flag() const {
    return " --attach \"" + socket_path_ + "\"";
  }

  fs::path scratch_;
  std::string env_dir_;
  std::string socket_path_;
  pid_t daemon_pid_ = -1;
  std::atomic<int> next_call_{0};
};

// ------------------------------------------------------- protocol units --

TEST(ServeFrame, HeaderAndPayloadSurviveEncodeDecode) {
  serve::Frame frame;
  frame.id = 42;
  frame.verb = "matrix";
  frame.exit = 1;
  frame.text = "line one\nline \"two\"\n";
  frame.payload = "{\"ok\":true}";
  const std::string wire = serve::encode_frame(frame);
  // Two-line protocol: exactly one newline inside the header, payload raw.
  const std::size_t newline = wire.find('\n');
  ASSERT_NE(newline, std::string::npos);
  std::string decode_error;
  const auto decoded =
      serve::decode_frame_header(wire.substr(0, newline), &decode_error);
  ASSERT_TRUE(decoded) << decode_error;
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->verb, "matrix");
  EXPECT_EQ(decoded->exit, 1);
  EXPECT_EQ(decoded->text, frame.text);
  EXPECT_EQ(wire.substr(newline + 1), frame.payload + "\n");
}

TEST(ServeFrame, MalformedHeaderIsRejectedWithDiagnostic) {
  std::string error;
  EXPECT_FALSE(serve::decode_frame_header("not json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(serve::decode_frame_header("{\"id\":1}", &error));
  EXPECT_FALSE(serve::decode_frame_header("{\"verb\":\"run\"}", &error));
}

TEST(ServeService, VerbRequestRoundTripsThroughJson) {
  serve::VerbRequest request;
  request.verb = "matrix";
  request.dir = "/some/dir with space";
  request.matrix.derivatives = {"SC88-A", "SC88-D"};
  request.matrix.platforms = {"golden-model", "hdl-rtl"};
  request.matrix.max_instructions = 123456;
  std::string error;
  const auto parsed = serve::parse_verb_request(serve::to_json(request),
                                                &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->verb, "matrix");
  EXPECT_EQ(parsed->dir, request.dir);
  EXPECT_EQ(parsed->matrix.derivatives, request.matrix.derivatives);
  EXPECT_EQ(parsed->matrix.platforms, request.matrix.platforms);
  EXPECT_EQ(parsed->matrix.max_instructions, 123456u);

  EXPECT_FALSE(serve::parse_verb_request("{\"verb\":\"nope\",\"dir\":\"/x\"}",
                                         &error));
  EXPECT_FALSE(serve::parse_verb_request("{\"verb\":\"run\"}", &error));
}

TEST(ServeService, LintVerbAndGateRoundTripThroughJson) {
  serve::VerbRequest request;
  request.verb = "lint";
  request.dir = "/some/dir";
  request.lint.derivative = "SC88-C";
  std::string error;
  auto parsed = serve::parse_verb_request(serve::to_json(request), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->verb, "lint");
  EXPECT_EQ(parsed->lint.derivative, "SC88-C");
  EXPECT_FALSE(parsed->lint_gate);

  // The --lint pre-run gate marshals on run and matrix…
  for (const char* verb : {"run", "matrix"}) {
    serve::VerbRequest gated;
    gated.verb = verb;
    gated.dir = "/some/dir";
    gated.lint_gate = true;
    parsed = serve::parse_verb_request(serve::to_json(gated), &error);
    ASSERT_TRUE(parsed) << error;
    EXPECT_TRUE(parsed->lint_gate) << verb;
  }

  // …and a gate-free request serializes without the key at all, so the
  // request documents of pre-gate clients are byte-identical.
  serve::VerbRequest plain;
  plain.verb = "run";
  plain.dir = "/some/dir";
  EXPECT_EQ(serve::to_json(plain).find("\"lint\""), std::string::npos);
}

TEST(ServeService, OwnershipRuleClassifiesVerbs) {
  for (const char* verb : {"run", "matrix", "check", "lint"}) {
    EXPECT_FALSE(serve::verb_mutates(verb)) << verb;
  }
  for (const char* verb : {"init", "port", "random", "release"}) {
    EXPECT_TRUE(serve::verb_mutates(verb)) << verb;
  }
}

// ------------------------------------------------------------ e2e: parity --

TEST_F(ServeE2E, AttachedRunIsByteIdenticalToLocalRun) {
  make_tree();
  spawn_daemon();
  const auto attached =
      run_cli("run \"" + env_dir_ + "\" --format json" + attach_flag());
  ASSERT_EQ(attached.exit_code, 0) << attached.err;
  const auto local = run_cli("run \"" + env_dir_ + "\" --format json");
  ASSERT_EQ(local.exit_code, 0) << local.err;
  EXPECT_EQ(attached.out, local.out);
}

TEST_F(ServeE2E, AttachedLintIsByteIdenticalToLocalLint) {
  make_tree();
  spawn_daemon();
  for (const char* format : {"", " --format json"}) {
    const auto attached =
        run_cli("lint \"" + env_dir_ + "\"" + format + attach_flag());
    ASSERT_EQ(attached.exit_code, 0) << attached.err;
    const auto local = run_cli("lint \"" + env_dir_ + "\"" + format);
    ASSERT_EQ(local.exit_code, 0) << local.err;
    EXPECT_EQ(attached.out, local.out);
  }
}

TEST_F(ServeE2E, AttachedLintGateRefusesDirtyTree) {
  make_tree();
  spawn_daemon();
  // Seed an undefined-register read into one cell on disk; the attached
  // gated run must refuse exactly like a local one, byte for byte.
  std::ofstream(fs::path(env_dir_) / "MEM_MODULE" / "TEST_MEMORY_000" /
                "test.asm")
      << ".INCLUDE Globals.inc\n"
         "_main:\n"
         " MOV d1, d3\n"
         " CALL Base_Report_Pass\n";
  const auto attached =
      run_cli("run \"" + env_dir_ + "\" --lint" + attach_flag());
  EXPECT_EQ(attached.exit_code, 1) << attached.err;
  EXPECT_NE(attached.out.find("lint gate failed: refusing to run"),
            std::string::npos)
      << attached.out;
  const auto local = run_cli("run \"" + env_dir_ + "\" --lint");
  EXPECT_EQ(local.exit_code, 1) << local.err;
  EXPECT_EQ(attached.out, local.out);
}

TEST_F(ServeE2E, FreshDaemonMatrixIsByteIdenticalToLocalMatrix) {
  make_tree();
  spawn_daemon();
  const std::string axes =
      " --derivatives SC88-A,SC88-B --platforms golden-model";
  const auto attached = run_cli("matrix \"" + env_dir_ + "\"" + axes +
                                " --format json" + attach_flag());
  const auto local =
      run_cli("matrix \"" + env_dir_ + "\"" + axes + " --format json");
  // Exit codes propagate through the socket too (SC88-B cells fail).
  EXPECT_EQ(attached.exit_code, local.exit_code);
  EXPECT_EQ(attached.out, local.out);
}

TEST_F(ServeE2E, AttachedErrorsArriveTypedWithExitTwo) {
  make_tree();
  spawn_daemon();
  const auto bad = run_cli("run \"" + env_dir_ +
                           "\" --derivative NO-SUCH --format json" +
                           attach_flag());
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.out.find("advm.unknown-derivative"), std::string::npos)
      << bad.out;
  const auto local = run_cli("run \"" + env_dir_ +
                             "\" --derivative NO-SUCH --format json");
  EXPECT_EQ(bad.out, local.out);
}

TEST_F(ServeE2E, SecondAttachedLapRunsWarm) {
  make_tree();
  const std::string cache_dir = (scratch_ / "cache").string();
  spawn_daemon("--backend process --shards 2 --jobs 4 --cache-dir \"" +
               cache_dir + "\"");
  const std::string command = "matrix \"" + env_dir_ +
                              "\" --derivatives SC88-A,SC88-D"
                              " --platforms golden-model,hdl-rtl"
                              " --format json" +
                              attach_flag();
  // SC88-D cells fail on an SC88-A tree (exit 1) — the warm-lap counters
  // are what this test pins, and failing cells exercise them just as
  // well; the exit code only has to agree between laps.
  const auto lap1 = run_cli(command);
  ASSERT_EQ(lap1.exit_code, 1) << lap1.err << lap1.out;
  const auto lap2 = run_cli(command);
  ASSERT_EQ(lap2.exit_code, 1) << lap2.err;

  const auto doc1 = support::json::parse(lap1.out);
  const auto doc2 = support::json::parse(lap2.out);
  ASSERT_TRUE(doc1 && doc2);
  const auto persistent_hits = [](const support::json::Value& doc) {
    std::uint64_t total = 0;
    for (const auto& cell : doc.find("cells")->items) {
      total += *cell.find("cache")->find("persistent_hits")->as_uint64();
    }
    return total;
  };
  // Lap 2 rides the warm persistent store and reuses pooled workers.
  EXPECT_GT(persistent_hits(*doc2), 0u);
  EXPECT_GT(*doc2->find("worker_reuse")->as_uint64(), 0u);
  // The resident cost model carries lap 1's measurements to lap 2
  // without a round trip through disk.
  EXPECT_EQ(*doc1->find("cost_model")->find("source")->as_string(),
            "estimate");
  EXPECT_EQ(*doc2->find("cost_model")->find("source")->as_string(),
            "measured");
  // The roll-up — the backend-invariant surface — is byte-stable across
  // laps even though cache counters legitimately warm up.
  const auto rollup = [](const std::string& out) {
    const std::size_t at = out.find("\"rollup\":");
    EXPECT_NE(at, std::string::npos);
    return out.substr(at);
  };
  EXPECT_EQ(rollup(lap1.out), rollup(lap2.out));
}

// -------------------------------------------------------- e2e: lifecycle --

TEST_F(ServeE2E, TwoConcurrentClientsBothGetTheirDocuments) {
  make_tree();
  spawn_daemon();
  CommandResult first;
  CommandResult second;
  std::thread one([&] {
    first = run_cli("run \"" + env_dir_ + "\" --format json" + attach_flag());
  });
  std::thread two([&] {
    second = run_cli("check \"" + env_dir_ + "\" --format json" +
                     attach_flag());
  });
  one.join();
  two.join();
  ASSERT_EQ(first.exit_code, 0) << first.err;
  ASSERT_EQ(second.exit_code, 0) << second.err;
  EXPECT_NE(first.out.find("\"verb\":\"run\""), std::string::npos);
  EXPECT_NE(second.out.find("\"verb\":\"check\""), std::string::npos);
}

TEST_F(ServeE2E, ClientVanishingMidRequestLeavesDaemonHealthy) {
  make_tree();
  spawn_daemon();
  // Hand-roll a client that sends a full matrix request and slams the
  // connection shut without reading the response.
  {
    int fd = -1;
    ASSERT_TRUE(serve::connect_endpoint(socket_path_, 5'000, &fd).ok());
    serve::VerbRequest request;
    request.verb = "matrix";
    request.dir = env_dir_;
    request.matrix.derivatives = {"SC88-A", "SC88-B"};
    request.matrix.platforms = {"golden-model"};
    serve::Frame frame;
    frame.id = 7;
    frame.verb = "matrix";
    frame.payload = serve::to_json(request);
    ASSERT_TRUE(exec::write_all_fd(fd, serve::encode_frame(frame)));
    ::close(fd);
  }
  // The daemon finishes the orphaned work, counts the lost client, and
  // keeps serving: a follow-up attached run must succeed.
  const auto after =
      run_cli("run \"" + env_dir_ + "\" --format json" + attach_flag());
  ASSERT_EQ(after.exit_code, 0) << after.err;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t lost = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats =
        run_cli("serve --socket \"" + socket_path_ + "\" --stats"
                " --format json");
    ASSERT_EQ(stats.exit_code, 0) << stats.err;
    const auto doc = support::json::parse(stats.out);
    ASSERT_TRUE(doc);
    lost = *doc->find("clients_lost")->as_uint64();
    if (lost > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(lost, 1u);
}

TEST_F(ServeE2E, IdleTimeoutDrainsFlushesCostModelAndUnlinksSocket) {
  make_tree();
  const std::string cache_dir = (scratch_ / "cache").string();
  spawn_daemon("--backend process --shards 2 --idle-timeout-ms 700"
               " --cache-dir \"" +
               cache_dir + "\"");
  const auto lap = run_cli("matrix \"" + env_dir_ +
                           "\" --derivatives SC88-A"
                           " --platforms golden-model --format json" +
                           attach_flag());
  ASSERT_EQ(lap.exit_code, 0) << lap.err;
  // No --stop, no signal: the daemon notices it is idle and exits clean.
  EXPECT_TRUE(daemon_exited(15'000))
      << slurp(scratch_ / "daemon.log");
  EXPECT_FALSE(fs::exists(socket_path_));
  // The shutdown drain published the measured costs for the next lap.
  EXPECT_TRUE(fs::exists(fs::path(cache_dir) / "cost-model.jsonl"));
}

TEST_F(ServeE2E, StaleSocketFileIsProbedAndReplaced) {
  make_tree();
  // The corpse: a socket file whose daemon is long gone.
  {
    int fd = -1;
    ASSERT_TRUE(serve::listen_endpoint(socket_path_, 1, &fd).ok());
    ::close(fd);
    ASSERT_TRUE(fs::exists(socket_path_));
  }
  spawn_daemon();  // must unlink the corpse and bind fresh
  const auto stats = run_cli("serve --socket \"" + socket_path_ +
                             "\" --stats --format json");
  EXPECT_EQ(stats.exit_code, 0) << stats.err;
}

TEST_F(ServeE2E, LiveSocketIsRefusedTyped) {
  make_tree();
  spawn_daemon();
  const auto second = run_cli("serve --socket \"" + socket_path_ +
                              "\" --format json");
  EXPECT_EQ(second.exit_code, 2);
  EXPECT_NE(second.out.find("advm.serve-socket-busy"), std::string::npos)
      << second.out;
  // The loser must not have unlinked the winner's socket.
  const auto stats = run_cli("serve --socket \"" + socket_path_ +
                             "\" --stats --format json");
  EXPECT_EQ(stats.exit_code, 0) << stats.err;
}

TEST_F(ServeE2E, StatsDocumentPinsItsContract) {
  make_tree();
  spawn_daemon();
  const auto run =
      run_cli("run \"" + env_dir_ + "\" --format json" + attach_flag());
  ASSERT_EQ(run.exit_code, 0);
  const auto stats = run_cli("serve --socket \"" + socket_path_ +
                             "\" --stats --format json");
  ASSERT_EQ(stats.exit_code, 0) << stats.err;
  // Fixed key order, one line — the report-document contract.
  const std::vector<std::string> keys = {
      "{\"ok\":true,\"verb\":\"serve\",\"socket\":",  "\"backend\":",
      "\"uptime_ms\":",       "\"clients_served\":",  "\"clients_lost\":",
      "\"requests_ok\":",     "\"requests_failed\":", "\"requests\":{",
      "\"trees\":",           "\"cache\":{\"hits\":", "\"persistent_hits\":",
      "\"boards\":{\"constructed\":",                 "\"stale_evicted\":",
      "\"cost_model\":{\"enabled\":",                 "\"keys\":"};
  std::size_t at = 0;
  for (const std::string& key : keys) {
    const std::size_t found = stats.out.find(key, at);
    ASSERT_NE(found, std::string::npos) << key << " out of order or missing in "
                                        << stats.out;
    at = found;
  }
  const auto doc = support::json::parse(stats.out);
  ASSERT_TRUE(doc);
  EXPECT_GE(*doc->find("clients_served")->as_uint64(), 1u);
  EXPECT_GE(*doc->find("requests_ok")->as_uint64(), 1u);
  EXPECT_EQ(*doc->find("trees")->as_uint64(), 1u);
  EXPECT_EQ(*doc->find("requests")->find("run")->as_uint64(), 1u);
}

TEST_F(ServeE2E, AttachToNothingFailsTypedAndFast) {
  make_tree();
  const auto lost = run_cli("run \"" + env_dir_ +
                            "\" --format json --attach \"" + socket_path_ +
                            "\"");
  EXPECT_EQ(lost.exit_code, 2);
  EXPECT_NE(lost.out.find("advm.serve-unreachable"), std::string::npos)
      << lost.out;
}

}  // namespace
