// advm::Session — the typed request/result API.
//
// Covers the contract the CLI and future shard workers rely on: request
// validation comes back as typed Status errors (unknown derivative /
// platform / bad root), consecutive verbs on one session share one object
// cache and one board pool by construction, and the JSON documents for
// `run` and `matrix` are byte-stable against checked-in goldens
// (tests/golden/session_*.json — the same bytes `advm --format json`
// prints).
//
// ADVM_GOLDEN_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "advm/report.h"
#include "advm/session.h"

namespace {

using namespace advm;
using namespace advm::core;

std::string golden(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(ADVM_GOLDEN_DIR) / name;
  EXPECT_TRUE(std::filesystem::exists(path)) << "missing golden " << path;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The canonical small system: five modules, two tests each, built into
/// the session's VFS at /SYS — the same tree `advm init --tests 2` puts on
/// disk.
BuildResult build_small_system(Session& session) {
  BuildRequest request;
  request.root = "/SYS";
  request.tests_per_module = 2;
  return session.run(request);
}

// ------------------------------------------------------ request validation --

TEST(SessionValidation, UnknownDerivativeIsATypedError) {
  Session session;
  RunRequest request;
  request.derivative = "SC99-Z";
  RunResult result = session.run(request);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code, "advm.unknown-derivative");
  EXPECT_NE(result.status.message.find("unknown derivative 'SC99-Z'"),
            std::string::npos);
  EXPECT_NE(result.status.message.find("SC88-A"), std::string::npos);
  EXPECT_TRUE(result.report.records.empty());
}

TEST(SessionValidation, UnknownPlatformIsATypedError) {
  Session session;
  RunRequest request;
  request.platform = "warp-drive";
  RunResult result = session.run(request);
  EXPECT_EQ(result.status.code, "advm.unknown-platform");
  EXPECT_NE(result.status.message.find("unknown platform 'warp-drive'"),
            std::string::npos);
}

TEST(SessionValidation, BadRootIsATypedError) {
  Session session;  // nothing built: /SYS does not exist
  RunRequest run_request;
  EXPECT_EQ(session.run(run_request).status.code, "advm.bad-root");

  MatrixRequest matrix_request;
  EXPECT_EQ(session.run(matrix_request).status.code, "advm.bad-root");

  CheckRequest check_request;
  EXPECT_EQ(session.run(check_request).status.code, "advm.bad-root");

  PortRequest port_request;
  port_request.to = "SC88-C";
  EXPECT_EQ(session.run(port_request).status.code, "advm.bad-root");

  ReleaseRequest release_request;
  EXPECT_EQ(session.run(release_request).status.code, "advm.bad-root");

  RandomRequest random_request;
  EXPECT_EQ(session.run(random_request).status.code, "advm.bad-root");
}

TEST(SessionValidation, MatrixValidatesEveryAxisName) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());

  MatrixRequest request;
  request.derivatives = {"SC88-A", "SC99-Z"};
  EXPECT_EQ(session.run(request).status.code, "advm.unknown-derivative");

  request.derivatives = {"SC88-A"};
  request.platforms = {"golden-model", "warp-drive"};
  EXPECT_EQ(session.run(request).status.code, "advm.unknown-platform");

  request.platforms = {};
  EXPECT_EQ(session.run(request).status.code, "advm.empty-matrix");
}

TEST(SessionValidation, PortValidatesTargetName) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  PortRequest request;
  request.to = "SC99-Z";
  EXPECT_EQ(session.run(request).status.code, "advm.unknown-derivative");
}

TEST(SessionValidation, ZeroShardsIsATypedError) {
  // shards = 0 used to be representable and silently degenerate; it must
  // fail validation before any work is planned.
  SessionConfig config;
  config.shards = 0;
  Session session(std::move(config));

  // Limits are checked before anything else — even building is refused.
  MatrixResult matrix = session.run(MatrixRequest{});
  EXPECT_EQ(matrix.status.code, "advm.bad-shards");
  EXPECT_TRUE(matrix.cells.empty());
  EXPECT_EQ(session.run(RunRequest{}).status.code, "advm.bad-shards");
  EXPECT_EQ(session.run(BuildRequest{}).status.code, "advm.bad-shards");
}

TEST(SessionValidation, ShardAndJobLimitsAreTypedErrors) {
  {
    SessionConfig config;
    config.shards = SessionConfig::kMaxShards + 1;
    Session session(std::move(config));
    EXPECT_EQ(session.run(MatrixRequest{}).status.code, "advm.bad-shards");
  }
  {
    SessionConfig config;
    config.jobs = SessionConfig::kMaxJobs + 1;
    Session session(std::move(config));
    EXPECT_EQ(session.run(RunRequest{}).status.code, "advm.bad-jobs");
    EXPECT_EQ(session.run(BuildRequest{}).status.code, "advm.bad-jobs");
    EXPECT_EQ(session.run(ReleaseRequest{}).status.code, "advm.bad-jobs");
  }
  // jobs = 0 stays legal: it means one worker per hardware thread.
  {
    SessionConfig config;
    config.jobs = 0;
    Session session(std::move(config));
    ASSERT_TRUE(build_small_system(session).status.ok());
    EXPECT_TRUE(session.run(RunRequest{}).status.ok());
  }
}

TEST(SessionValidation, OversizedRequestTimeoutIsATypedError) {
  SessionConfig config;
  config.request_timeout_ms = SessionConfig::kMaxRequestTimeoutMs + 1;
  Session session(std::move(config));
  MatrixResult matrix = session.run(MatrixRequest{});
  EXPECT_EQ(matrix.status.code, "advm.bad-timeout");
  EXPECT_TRUE(matrix.cells.empty());
  // 0 stays legal: it means wait forever (the pre-deadline behaviour).
  SessionConfig forever;
  forever.request_timeout_ms = 0;
  Session patient(std::move(forever));
  ASSERT_TRUE(build_small_system(patient).status.ok());
  EXPECT_TRUE(patient.run(RunRequest{}).status.ok());
}

TEST(SessionValidation, MalformedFaultPlanIsATypedError) {
  SessionConfig config;
  config.fault_plan = "0:melt@1";
  Session session(std::move(config));
  MatrixResult matrix = session.run(MatrixRequest{});
  EXPECT_EQ(matrix.status.code, "advm.bad-fault-plan");
  EXPECT_NE(matrix.status.message.find("melt"), std::string::npos);
  EXPECT_TRUE(matrix.cells.empty());
}

// ------------------------------------------------------------ happy paths --

TEST(Session, BuildRunCheckPortReleaseEndToEnd) {
  Session session;
  BuildResult built = build_small_system(session);
  ASSERT_TRUE(built.status.ok()) << built.status.message;
  EXPECT_EQ(built.derivative, "SC88-A");
  EXPECT_EQ(built.tests, 10u);
  EXPECT_EQ(built.layout.environments.size(), 5u);
  EXPECT_GT(built.files, 0u);

  RunResult run = session.run(RunRequest{});
  ASSERT_TRUE(run.status.ok()) << run.status.message;
  EXPECT_TRUE(run.report.all_passed()) << format_report(run.report);

  CheckResult check = session.run(CheckRequest{});
  ASSERT_TRUE(check.status.ok());
  EXPECT_TRUE(check.report.clean());

  PortRequest port_request;
  port_request.to = "SC88-C";
  PortResult ported = session.run(port_request);
  ASSERT_TRUE(ported.status.ok());
  EXPECT_EQ(ported.target, "SC88-C");
  // The ADVM claim, through the typed API: no test file touched.
  EXPECT_EQ(ported.repair.test_layer.files_touched(), 0u);
  EXPECT_GT(ported.repair.abstraction_layer.files_touched(), 0u);

  RunRequest rerun_request;
  rerun_request.derivative = "SC88-C";
  RunResult rerun = session.run(rerun_request);
  ASSERT_TRUE(rerun.status.ok());
  EXPECT_TRUE(rerun.report.all_passed()) << format_report(rerun.report);

  ReleaseRequest release_request;
  release_request.derivative = "SC88-C";
  ReleaseResult released = session.run(release_request);
  ASSERT_TRUE(released.status.ok()) << released.status.message;
  EXPECT_TRUE(released.verified);
  ASSERT_TRUE(released.frozen.has_value());
  EXPECT_TRUE(released.frozen->all_passed());
  EXPECT_EQ(released.release.sub_labels.size(), 6u);  // 5 envs + globals
}

TEST(Session, RandomRegeneratesEveryAdvmEnvironment) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  RandomRequest request;
  request.seed = 7;
  RandomResult result = session.run(request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.seed, 7u);
  EXPECT_EQ(result.regenerated, 5u);
  EXPECT_TRUE(result.values.count(GlobalDefineNames::kTest1TargetPage));

  // The regenerated tree still regresses green (constraints are legal).
  RunResult run = session.run(RunRequest{});
  ASSERT_TRUE(run.status.ok());
  EXPECT_TRUE(run.report.all_passed()) << format_report(run.report);
}

// ----------------------------------------------- shared cache, shared pool --

TEST(Session, ConsecutiveVerbsShareOneObjectCache) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());

  RunResult run = session.run(RunRequest{});
  ASSERT_TRUE(run.status.ok());
  const ObjectCacheStats after_run = session.cache().stats();
  EXPECT_GT(after_run.misses, 0u);

  // A violation check assembles the same translation units with the same
  // options: on one session it must be served entirely from the cache.
  CheckResult check = session.run(CheckRequest{});
  ASSERT_TRUE(check.status.ok());
  const ObjectCacheStats after_check = session.cache().stats();
  EXPECT_EQ(after_check.misses, after_run.misses);
  EXPECT_GT(after_check.hits, after_run.hits);

  // A matrix over more derivatives links fresh cells against the same
  // objects — the assembly phase is pure hits.
  MatrixRequest matrix_request;
  matrix_request.derivatives = {"SC88-A", "SC88-B"};
  matrix_request.platforms = {"golden-model", "accelerator"};
  MatrixResult matrix = session.run(matrix_request);
  ASSERT_TRUE(matrix.status.ok());
  EXPECT_EQ(matrix.cells.size(), 4u);
  const ObjectCacheStats after_matrix = session.cache().stats();
  EXPECT_EQ(after_matrix.misses, after_run.misses);
  EXPECT_GT(after_matrix.hits, after_check.hits);
}

TEST(Session, BoardPoolReusesBoardsAcrossRunsWithIdenticalDigests) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());

  RunResult first = session.run(RunRequest{});
  ASSERT_TRUE(first.status.ok());
  const BoardPoolStats after_first = session.boards().stats();
  // Serial execution: every task returned its board before the next one
  // leased, so the whole run needed exactly one board.
  EXPECT_EQ(after_first.constructed, 1u);
  EXPECT_GT(after_first.reused, 0u);

  RunResult second = session.run(RunRequest{});
  ASSERT_TRUE(second.status.ok());
  const BoardPoolStats after_second = session.boards().stats();
  EXPECT_EQ(after_second.constructed, after_first.constructed);
  EXPECT_GT(after_second.reused, after_first.reused);

  // The pooled (reused) boards reproduce the fresh boards' outcomes
  // exactly — verdicts, state digests, instruction and cycle counts. (The
  // cache counters legitimately differ: the second run is pure hits.)
  EXPECT_EQ(second.report.outcome_digest(), first.report.outcome_digest());
  EXPECT_EQ(second.report.total_instructions(),
            first.report.total_instructions());
  ASSERT_EQ(second.report.records.size(), first.report.records.size());
  for (std::size_t i = 0; i < first.report.records.size(); ++i) {
    EXPECT_EQ(second.report.records[i].cycles, first.report.records[i].cycles)
        << first.report.records[i].test_id;
  }
}

// -------------------------------------------------------- board-pool trim --

TEST(BoardPool, FreeListCapTrimsReleasedBoards) {
  // Three concurrent leases on one key, released on one thread (one
  // shard): with a cap of 1, the first release pools and the other two
  // are destroyed instead of accumulating.
  BoardPool pool(/*max_free_per_key=*/1);
  const soc::DerivativeSpec& spec = soc::derivative_a();
  {
    auto lease_a = pool.acquire(spec, sim::PlatformKind::GoldenModel);
    auto lease_b = pool.acquire(spec, sim::PlatformKind::GoldenModel);
    auto lease_c = pool.acquire(spec, sim::PlatformKind::GoldenModel);
  }
  const BoardPoolStats stats = pool.stats();
  EXPECT_EQ(stats.constructed, 3u);
  EXPECT_EQ(stats.trimmed, 2u);

  // The one pooled board is still leasable.
  { auto again = pool.acquire(spec, sim::PlatformKind::GoldenModel); }
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(BoardPool, StaleKeysAreEvictedWhenTheSpecChangesUnderneath) {
  BoardPool pool;
  soc::DerivativeSpec spec = soc::derivative_a();  // mutable local copy
  { auto lease = pool.acquire(spec, sim::PlatformKind::GoldenModel); }

  // The spec object at this address now describes different hardware: the
  // pooled board must never be leased again; acquire discovers it lazily.
  spec.page_count += 1;
  { auto lease = pool.acquire(spec, sim::PlatformKind::GoldenModel); }
  BoardPoolStats stats = pool.stats();
  EXPECT_EQ(stats.constructed, 2u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(stats.discarded, 1u);
}

TEST(BoardPool, StaleFreeBoardsAreEvictedEagerlyOnRelease) {
  // A board pooled under the old spec while a lease built under the new
  // spec is still out: when the new-spec board returns, the free list
  // holds a provably stale sibling — it is destroyed on the spot instead
  // of waiting for the next acquire to stumble over it.
  BoardPool pool;
  soc::DerivativeSpec spec = soc::derivative_a();
  std::optional<BoardPool::Lease> old_lease(
      pool.acquire(spec, sim::PlatformKind::GoldenModel));
  spec.page_count += 1;
  std::optional<BoardPool::Lease> new_lease(
      pool.acquire(spec, sim::PlatformKind::GoldenModel));

  old_lease.reset();  // pools the old-fingerprint board
  new_lease.reset();  // returning new board evicts the stale one

  const BoardPoolStats stats = pool.stats();
  EXPECT_EQ(stats.constructed, 2u);
  EXPECT_EQ(stats.stale_evicted, 1u);

  // Only the current-spec board remains leasable.
  { auto lease = pool.acquire(spec, sim::PlatformKind::GoldenModel); }
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(Session, ConfigPlumbsTrimPolicyAndPersistentCache) {
  SessionConfig config;
  config.board_pool_max_free_per_key = 2;
  Session session(std::move(config));
  EXPECT_EQ(session.boards().max_free_per_key(), 2u);
  // No cache dir configured: the persistent tier stays off.
  EXPECT_EQ(session.cache().disk_store(), nullptr);
}

// ------------------------------------------------------------ JSON goldens --

TEST(SessionJson, RunDocumentMatchesGolden) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  RunResult result = session.run(RunRequest{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(to_json(result) + "\n", golden("session_run.json"));
}

TEST(SessionJson, MatrixDocumentMatchesGolden) {
  Session session;
  ASSERT_TRUE(build_small_system(session).status.ok());
  MatrixRequest request;
  request.platforms = {"golden-model", "accelerator"};
  MatrixResult result = session.run(request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(to_json(result) + "\n", golden("session_matrix.json"));
}

TEST(SessionJson, ErrorDocumentCarriesCodeAndMessage) {
  Session session;
  RunRequest request;
  request.derivative = "SC99-Z";
  RunResult result = session.run(request);
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"advm.unknown-derivative\""),
            std::string::npos);
}

}  // namespace
