// Tests for the simulator core: bus routing, RAM/ROM semantics, machine
// execution of every instruction class, flags, traps, interrupts, timing
// models and platform capability data.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/linker.h"
#include "sim/bus.h"
#include "sim/machine.h"
#include "sim/platform.h"
#include "sim/timing.h"
#include "sim/trace.h"
#include "support/diagnostics.h"
#include "support/vfs.h"

namespace {

using namespace advm::sim;
using advm::support::DiagnosticEngine;
using advm::support::VirtualFileSystem;

// ------------------------------------------------------------------ bus ----

TEST(Bus, MapRejectsOverlap) {
  Bus bus;
  EXPECT_TRUE(bus.map(0x1000, std::make_unique<Ram>("a", 0x100)));
  EXPECT_FALSE(bus.map(0x10FF, std::make_unique<Ram>("b", 0x100)));
  EXPECT_TRUE(bus.map(0x1100, std::make_unique<Ram>("c", 0x100)));
  EXPECT_EQ(bus.device_count(), 2u);
}

TEST(Bus, MapRejectsZeroSizeAndAddressWrap) {
  Bus bus;
  EXPECT_FALSE(bus.map(0x1000, std::make_unique<Ram>("z", 0)));
  EXPECT_FALSE(bus.map(0xFFFF'FFF0, std::make_unique<Ram>("w", 0x100)));
}

TEST(Bus, Read32LittleEndian) {
  Bus bus;
  bus.map(0x0, std::make_unique<Ram>("r", 16));
  ASSERT_TRUE(bus.write8(0, 0x78));
  ASSERT_TRUE(bus.write8(1, 0x56));
  ASSERT_TRUE(bus.write8(2, 0x34));
  ASSERT_TRUE(bus.write8(3, 0x12));
  std::uint32_t v = 0;
  ASSERT_TRUE(bus.read32(0, v));
  EXPECT_EQ(v, 0x1234'5678u);
}

TEST(Bus, UnmappedAccessFails) {
  Bus bus;
  bus.map(0x1000, std::make_unique<Ram>("r", 16));
  std::uint8_t b = 0;
  EXPECT_FALSE(bus.read8(0x0, b));
  EXPECT_FALSE(bus.write8(0x2000, 1));
  std::uint32_t w = 0;
  EXPECT_FALSE(bus.read32(0x100E, w));  // straddles the end of the window
}

TEST(Bus, RomRejectsBusWritesButAllowsProgramBackdoor) {
  Bus bus;
  auto rom = std::make_unique<Rom>("rom", 16);
  Rom* rom_ptr = rom.get();
  bus.map(0x0, std::move(rom));
  EXPECT_FALSE(bus.write8(0, 0xAA));
  rom_ptr->program(0, {0xAA});
  std::uint8_t b = 0;
  ASSERT_TRUE(bus.read8(0, b));
  EXPECT_EQ(b, 0xAA);
}

TEST(Bus, LoadBytesCrossesWindowsAndUsesRomBackdoor) {
  Bus bus;
  bus.map(0x0, std::make_unique<Rom>("rom", 4));
  bus.map(0x4, std::make_unique<Ram>("ram", 4));
  EXPECT_TRUE(bus.load_bytes(0x2, {1, 2, 3, 4}));
  std::uint8_t b = 0;
  ASSERT_TRUE(bus.read8(0x3, b));
  EXPECT_EQ(b, 2);
  ASSERT_TRUE(bus.read8(0x4, b));
  EXPECT_EQ(b, 3);
  EXPECT_FALSE(bus.load_bytes(0x6, {9, 9, 9}));  // runs off the end
}

TEST(Ram, TracksUninitializedReads) {
  Ram ram("r", 8, /*track_init=*/true);
  std::uint8_t v = 0;
  ASSERT_TRUE(ram.read8(0, v));
  EXPECT_EQ(ram.uninitialized_reads(), 1u);
  ASSERT_TRUE(ram.write8(0, 5));
  ASSERT_TRUE(ram.read8(0, v));
  EXPECT_EQ(ram.uninitialized_reads(), 1u);  // now initialised
}

// --------------------------------------------------------------- machine ---

/// Assembles, links and loads a bare-metal program into a flat RAM board.
class MachineTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRamBase = 0x0;
  static constexpr std::uint32_t kRamSize = 0x10000;
  static constexpr std::uint32_t kVtBase = 0x8000;
  static constexpr std::uint32_t kStackTop = 0x10000;

  MachineTest() {
    bus_.map(kRamBase, std::make_unique<Ram>("ram", kRamSize));
    machine_ = std::make_unique<Machine>(bus_, timing_);
  }

  /// Assembles `source`, links at code base 0x1000, loads, resets.
  void load(std::string_view source) {
    advm::assembler::Assembler assembler(vfs_, diags_, {});
    auto obj = assembler.assemble_source("/test.asm", source);
    ASSERT_TRUE(obj.has_value()) << diags_.to_string();
    std::vector<advm::assembler::ObjectFile> objects{obj->object};
    advm::assembler::LinkOptions lo;
    lo.code_base = 0x1000;
    lo.data_base = 0x4000;
    auto image = advm::assembler::link(objects, lo, diags_);
    ASSERT_TRUE(image.has_value()) << diags_.to_string();
    for (const auto& seg : image->segments) {
      ASSERT_TRUE(bus_.load_bytes(seg.base, seg.bytes));
    }
    machine_->reset(image->entry, kStackTop, kVtBase);
  }

  RunResult run(std::uint64_t max = 100000) { return machine_->run(max); }

  VirtualFileSystem vfs_;
  DiagnosticEngine diags_;
  Bus bus_;
  FunctionalTiming timing_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(MachineTest, HaltStopsExecution) {
  load("_main: HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(r.instructions, 1u);
}

TEST_F(MachineTest, MovAndArithmetic) {
  load(
      "_main:\n"
      " MOV d0, 10\n"
      " MOV d1, 32\n"
      " ADD d2, d0, d1\n"
      " SUB d3, d1, d0\n"
      " MUL d4, d0, 5\n"
      " DIV d5, d1, 4\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(2), 42u);
  EXPECT_EQ(machine_->d(3), 22u);
  EXPECT_EQ(machine_->d(4), 50u);
  EXPECT_EQ(machine_->d(5), 8u);
}

TEST_F(MachineTest, LogicAndShifts) {
  load(
      "_main:\n"
      " MOV d0, 0xF0F0\n"
      " AND d1, d0, 0xFF00\n"
      " OR d2, d0, 0x000F\n"
      " XOR d3, d0, 0xFFFF\n"
      " NOT d4, d0\n"
      " SHL d5, d0, 4\n"
      " SHR d6, d0, 4\n"
      " MOV d7, 0x80000000\n"
      " SAR d8, d7, 31\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 0xF000u);
  EXPECT_EQ(machine_->d(2), 0xF0FFu);
  EXPECT_EQ(machine_->d(3), 0x0F0Fu);
  EXPECT_EQ(machine_->d(4), 0xFFFF0F0Fu);
  EXPECT_EQ(machine_->d(5), 0xF0F00u);
  EXPECT_EQ(machine_->d(6), 0xF0Fu);
  EXPECT_EQ(machine_->d(8), 0xFFFFFFFFu);
}

TEST_F(MachineTest, InsertExtractMatchPaperSemantics) {
  // Fig 6: INSERT d14, d14, page, pos, width — build a control word.
  load(
      "_main:\n"
      " MOV d14, 0xFFFFFF00\n"
      " INSERT d14, d14, 8, 0, 5\n"
      " EXTRACT d3, d14, 0, 5\n"
      " EXTRACT d4, d14, 8, 3\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  // Field [4:0] cleared then set to 8: 0xFFFFFF00 -> 0xFFFFFF08
  EXPECT_EQ(machine_->d(14), 0xFFFFFF08u);
  EXPECT_EQ(machine_->d(3), 8u);
  EXPECT_EQ(machine_->d(4), 0x7u);  // bits [10:8] sit in the 0xFF region
}

TEST_F(MachineTest, LoadStoreAddressingModes) {
  load(
      "_main:\n"
      " MOV d0, 0xCAFE\n"
      " STORE [0x4000], d0\n"
      " LOAD d1, [0x4000]\n"
      " LEA a2, 0x4000\n"
      " LOAD d2, [a2]\n"
      " LOAD d3, [a2 + 0]\n"
      " MOV d4, 0xBEEF\n"
      " STORE [a2 + 4], d4\n"
      " LOAD d5, [0x4004]\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 0xCAFEu);
  EXPECT_EQ(machine_->d(2), 0xCAFEu);
  EXPECT_EQ(machine_->d(3), 0xCAFEu);
  EXPECT_EQ(machine_->d(5), 0xBEEFu);
}

TEST_F(MachineTest, PushPopStackDiscipline) {
  load(
      "_main:\n"
      " MOV d0, 11\n"
      " MOV d1, 22\n"
      " PUSH d0\n"
      " PUSH d1\n"
      " POP d2\n"
      " POP d3\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(2), 22u);
  EXPECT_EQ(machine_->d(3), 11u);
  EXPECT_EQ(machine_->a(10), kStackTop);  // balanced
}

TEST_F(MachineTest, CallReturnNesting) {
  load(
      "_main:\n"
      " CALL outer\n"
      " MOV d0, 99\n"
      " HALT\n"
      "outer:\n"
      " CALL inner\n"
      " ADD d1, d1, 1\n"
      " RETURN\n"
      "inner:\n"
      " MOV d1, 10\n"
      " RETURN\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(0), 99u);
  EXPECT_EQ(machine_->d(1), 11u);
}

TEST_F(MachineTest, ConditionalBranchesAfterCmp) {
  load(
      "_main:\n"
      " MOV d0, 5\n"
      " CMP d0, 5\n"
      " JEQ .eq_taken\n"
      " MOV d1, 0xDEAD\n"
      " HALT\n"
      ".eq_taken:\n"
      " CMP d0, 6\n"
      " JLT .lt_taken\n"
      " MOV d1, 0xDEAD\n"
      " HALT\n"
      ".lt_taken:\n"
      " CMP d0, 4\n"
      " JGE .ge_taken\n"
      " MOV d1, 0xDEAD\n"
      " HALT\n"
      ".ge_taken:\n"
      " MOV d1, 0x600D\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 0x600Du);
}

TEST_F(MachineTest, SignedComparisonAcrossZero) {
  load(
      "_main:\n"
      " MOV d0, 0\n"
      " SUB d0, d0, 5\n"   // d0 = -5
      " CMP d0, 3\n"
      " JLT .good\n"
      " MOV d1, 1\n HALT\n"
      ".good: MOV d1, 2\n HALT\n");
  EXPECT_EQ(run().reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 2u) << "-5 < 3 must hold signed";
}

TEST_F(MachineTest, LoopCountsDown) {
  load(
      "_main:\n"
      " MOV d0, 10\n"
      " MOV d1, 0\n"
      ".loop:\n"
      " ADD d1, d1, d0\n"
      " SUB d0, d0, 1\n"
      " JNZ .loop\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 55u);
}

TEST_F(MachineTest, DivideByZeroTrapsUnhandled) {
  load(
      "_main:\n"
      " MOV d0, 7\n"
      " DIV d1, d0, 0\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::UnhandledTrap);
  ASSERT_TRUE(r.fault_vector.has_value());
  EXPECT_EQ(*r.fault_vector, TrapVectors::kDivideByZero);
}

TEST_F(MachineTest, BusErrorTrapsUnhandled) {
  load(
      "_main:\n"
      " LOAD d0, [0xF0000000]\n"
      " HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, TrapVectors::kBusError);
}

TEST_F(MachineTest, SoftwareTrapWithInstalledHandler) {
  load(
      "VT .EQU 0x8000\n"
      "_main:\n"
      " LOAD d0, handler\n"
      " STORE [VT + 4 * 10], d0\n"  // TRAP 2 → vector 8+2 = 10
      " TRAP 2\n"
      " HALT\n"
      "handler:\n"
      " MOV d5, 0x7A4\n"
      " RETI\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(5), 0x7A4u);
}

TEST_F(MachineTest, TrapHandlerReturnsAfterTrapInstruction) {
  load(
      "VT .EQU 0x8000\n"
      "_main:\n"
      " LOAD d0, handler\n"
      " STORE [VT + 4 * 8], d0\n"
      " MOV d1, 1\n"
      " TRAP 0\n"
      " ADD d1, d1, 10\n"  // must execute exactly once after RETI
      " HALT\n"
      "handler:\n"
      " ADD d1, d1, 100\n"
      " RETI\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(1), 111u);
}

TEST_F(MachineTest, IllegalCoreRegWriteTraps) {
  load("_main: MTCR COREID, d0\n HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::UnhandledTrap);
  EXPECT_EQ(*r.fault_vector, TrapVectors::kIllegalInstruction);
}

TEST_F(MachineTest, MfcrReadsCoreState) {
  machine_->set_core_id(0x88A0'0001);
  load(
      "_main:\n"
      " MFCR d0, COREID\n"
      " MFCR d1, VTBASE\n"
      " HALT\n");
  machine_->set_core_id(0x88A0'0001);  // reset() cleared regs, not core id
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);
  EXPECT_EQ(machine_->d(0), 0x88A0'0001u);
  EXPECT_EQ(machine_->d(1), kVtBase);
}

TEST_F(MachineTest, CycleLimitStopsRunawayTest) {
  load("_main: JMP _main\n");
  auto r = run(1000);
  EXPECT_EQ(r.reason, StopReason::CycleLimit);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST_F(MachineTest, StateDigestDiffersWhenStateDiffers) {
  load("_main: MOV d0, 1\n HALT\n");
  run();
  auto digest1 = machine_->state_digest();
  load("_main: MOV d0, 2\n HALT\n");
  run();
  EXPECT_NE(digest1, machine_->state_digest());
}

TEST_F(MachineTest, TraceRecordsInstructionsAndMemory) {
  RecordingTrace trace;
  machine_->set_trace(&trace);
  load(
      "_main:\n"
      " MOV d0, 3\n"
      " STORE [0x4000], d0\n"
      " HALT\n");
  run();
  ASSERT_EQ(trace.instrs.size(), 3u);
  EXPECT_EQ(trace.instrs[0].pc, 0x1000u);
  ASSERT_EQ(trace.mems.size(), 1u);
  EXPECT_TRUE(trace.mems[0].is_write);
  EXPECT_EQ(trace.mems[0].addr, 0x4000u);
  EXPECT_EQ(trace.mems[0].value, 3u);
}

TEST_F(MachineTest, BreakStopsOnlyWhenConfigured) {
  load("_main: BREAK\n HALT\n");
  auto r = run();
  EXPECT_EQ(r.reason, StopReason::Halted);  // default config: BREAK = NOP

  MachineConfig config;
  config.break_stops = true;
  Machine debug_machine(bus_, timing_, config);
  debug_machine.reset(0x1000, kStackTop, kVtBase);
  auto r2 = debug_machine.run(100);
  EXPECT_EQ(r2.reason, StopReason::Breakpoint);
}

TEST_F(MachineTest, XCheckCountsUninitializedRegisterReads) {
  MachineConfig config;
  config.x_check_registers = true;
  Machine gate_machine(bus_, timing_, config);
  load("_main: ADD d1, d0, d2\n MOV d3, 1\n ADD d4, d3, 1\n HALT\n");
  gate_machine.reset(0x1000, kStackTop, kVtBase);
  auto r = gate_machine.run(100);
  EXPECT_EQ(r.reason, StopReason::Halted);
  // d0 and d2 were never written before use.
  EXPECT_EQ(gate_machine.x_warnings(), 2u);
}

// ---------------------------------------------------------------- timing ---

TEST(Timing, PipelineChargesMoreThanFunctional) {
  FunctionalTiming functional;
  PipelineTiming pipeline;
  advm::isa::Instruction mul;
  mul.op = advm::isa::Opcode::Mul;
  EXPECT_EQ(functional.instruction_cost(mul, false), 1u);
  EXPECT_GT(pipeline.instruction_cost(mul, false), 1u);

  advm::isa::Instruction jmp;
  jmp.op = advm::isa::Opcode::Jmp;
  EXPECT_GT(pipeline.instruction_cost(jmp, true),
            pipeline.instruction_cost(jmp, false));
}

// -------------------------------------------------------------- platforms --

TEST(Platform, SixPlatformsWithDistinctNames) {
  std::set<std::string_view> names;
  for (auto kind : kAllPlatforms) names.insert(to_string(kind));
  EXPECT_EQ(names.size(), 6u);
}

TEST(Platform, VisibilityOrderingMatchesPaper) {
  // HDL platforms see everything; accelerator and product silicon do not.
  EXPECT_TRUE(platform_caps(PlatformKind::GoldenModel).instruction_trace);
  EXPECT_TRUE(platform_caps(PlatformKind::RtlSim).instruction_trace);
  EXPECT_TRUE(platform_caps(PlatformKind::GateSim).x_checking);
  EXPECT_FALSE(platform_caps(PlatformKind::Accelerator).instruction_trace);
  EXPECT_FALSE(platform_caps(PlatformKind::ProductSilicon).register_access);
  EXPECT_TRUE(platform_caps(PlatformKind::Bondout).register_access);
}

TEST(Platform, ThroughputOrderingMatchesPaper) {
  // silicon ≫ accelerator ≫ RTL ≫ gate; golden model fast.
  auto ips = [](PlatformKind k) { return platform_caps(k).modeled_ips; };
  EXPECT_GT(ips(PlatformKind::ProductSilicon), ips(PlatformKind::Accelerator));
  EXPECT_GT(ips(PlatformKind::Accelerator), ips(PlatformKind::RtlSim));
  EXPECT_GT(ips(PlatformKind::RtlSim), ips(PlatformKind::GateSim));
  EXPECT_GT(ips(PlatformKind::GoldenModel), ips(PlatformKind::RtlSim));
}

}  // namespace
