// Tests for the SoC layer: derivative specs, peripherals, global-layer
// source generation, and end-to-end board runs across all six platforms.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/linker.h"
#include "soc/board.h"
#include "soc/derivative.h"
#include "soc/global_layer.h"
#include "soc/intc.h"
#include "soc/nvm.h"
#include "soc/page_module.h"
#include "soc/simctrl.h"
#include "soc/timer.h"
#include "soc/uart.h"
#include "support/diagnostics.h"
#include "support/vfs.h"

namespace {

using namespace advm::soc;
using advm::sim::PlatformKind;
using advm::sim::StopReason;
using advm::support::DiagnosticEngine;
using advm::support::VirtualFileSystem;

/// Word-transaction register access, as the SC88's LOAD/STORE issue it.
std::uint32_t dev_read32(advm::sim::BusDevice& dev, std::uint32_t offset) {
  std::uint32_t v = 0;
  EXPECT_TRUE(dev.read32(offset, v));
  return v;
}

void dev_write32(advm::sim::BusDevice& dev, std::uint32_t offset,
                 std::uint32_t value) {
  EXPECT_TRUE(dev.write32(offset, value));
}

// ------------------------------------------------------------ derivatives --

TEST(Derivatives, FourDistinctSpecs) {
  EXPECT_EQ(all_derivatives().size(), 4u);
  EXPECT_EQ(derivative_a().name, "SC88-A");
  EXPECT_EQ(find_derivative("SC88-C"), &derivative_c());
  EXPECT_EQ(find_derivative("SC88-X"), nullptr);
}

TEST(Derivatives, ChangeClassesMatchPaperScenarios) {
  // B: field shifted by one (paper §4 change 1).
  EXPECT_EQ(derivative_a().page_field, (FieldGeometry{0, 5}));
  EXPECT_EQ(derivative_b().page_field, (FieldGeometry{1, 5}));
  // C: field widened by one bit for more pages (paper §4 change 2).
  EXPECT_EQ(derivative_c().page_field, (FieldGeometry{0, 6}));
  EXPECT_GT(derivative_c().page_count, derivative_a().page_count);
  // C: ES input registers swapped (paper Fig 7).
  EXPECT_EQ(derivative_a().es_version, 1);
  EXPECT_EQ(derivative_c().es_version, 2);
  // D: register renames (paper §2 "register name has been changed").
  EXPECT_EQ(derivative_a().naming, RegisterNaming::Compact);
  EXPECT_EQ(derivative_d().naming, RegisterNaming::Underscored);
  // D: moved peripherals.
  EXPECT_NE(derivative_d().page_module_base, derivative_a().page_module_base);
}

// ------------------------------------------------------------ page module --

TEST(PageModule, SelectWriteReadBack) {
  PageModule pm(FieldGeometry{0, 5}, 8);
  dev_write32(pm, PageModule::kCtrlOffset, 3);
  EXPECT_EQ(pm.selected_page(), 3u);
  dev_write32(pm, PageModule::kDataOffset, 0xAB);
  EXPECT_EQ(dev_read32(pm, PageModule::kDataOffset), 0xABu);
  EXPECT_EQ(pm.page_data(3), 0xABu);
}

TEST(PageModule, PagesAreIsolated) {
  PageModule pm(FieldGeometry{0, 5}, 8);
  dev_write32(pm, PageModule::kCtrlOffset, 1);
  dev_write32(pm, PageModule::kDataOffset, 0x11);
  dev_write32(pm, PageModule::kCtrlOffset, 2);
  dev_write32(pm, PageModule::kDataOffset, 0x22);
  dev_write32(pm, PageModule::kCtrlOffset, 1);
  EXPECT_EQ(dev_read32(pm, PageModule::kDataOffset), 0x11u);
}

TEST(PageModule, FieldGeometryGovernsDecoding) {
  // Derivative B: field at pos 1. The same numeric CTRL value selects a
  // *different* page — the precise bug hardwired tests hit on a new
  // derivative.
  PageModule a(FieldGeometry{0, 5}, 32);
  PageModule b(FieldGeometry{1, 5}, 32);
  dev_write32(a, PageModule::kCtrlOffset, 8);
  dev_write32(b, PageModule::kCtrlOffset, 8);
  EXPECT_EQ(a.selected_page(), 8u);
  EXPECT_EQ(b.selected_page(), 4u);
  dev_write32(b, PageModule::kCtrlOffset, 8u << 1);
  EXPECT_EQ(b.selected_page(), 8u);
}

TEST(PageModule, OutOfRangePageFlagsErrorAndKeepsSelection) {
  PageModule pm(FieldGeometry{0, 5}, 8);
  dev_write32(pm, PageModule::kCtrlOffset, 2);
  dev_write32(pm, PageModule::kCtrlOffset, 20);  // >= page_count
  EXPECT_TRUE(pm.page_error());
  EXPECT_EQ(pm.selected_page(), 2u);
  // STATUS: ready | page_error | page<<8; write-1-clear the error.
  std::uint32_t status = dev_read32(pm, PageModule::kStatusOffset);
  EXPECT_TRUE(status & PageModule::kStatusPageError);
  dev_write32(pm, PageModule::kStatusOffset, PageModule::kStatusPageError);
  EXPECT_FALSE(pm.page_error());
}

TEST(PageModule, CountRegisterReadOnly) {
  PageModule pm(FieldGeometry{0, 5}, 24);
  EXPECT_EQ(dev_read32(pm, PageModule::kCountOffset), 24u);
  dev_write32(pm, PageModule::kCountOffset, 99);
  EXPECT_EQ(dev_read32(pm, PageModule::kCountOffset), 24u);
}

// ------------------------------------------------------------------- uart --

TEST(Uart, TransmitLogsBytes) {
  IrqLines irqs;
  Uart uart(1, irqs, 2);
  dev_write32(uart, Uart::kDataOffset, 'H');
  uart.tick(1000);
  dev_write32(uart, Uart::kDataOffset, 'i');
  EXPECT_EQ(uart.transmitted(), "Hi");
}

TEST(Uart, StatusBitsMoveBetweenVersions) {
  IrqLines irqs;
  Uart v1(1, irqs, 2);
  Uart v2(2, irqs, 2);
  // Idle + empty: v1 has TX_READY at bit0; v2 at bit4.
  EXPECT_EQ(dev_read32(v1, Uart::kStatusOffset), 0x1u);
  EXPECT_EQ(dev_read32(v2, Uart::kStatusOffset), 0x10u);
  v1.inject_rx("x");
  v2.inject_rx("x");
  EXPECT_EQ(dev_read32(v1, Uart::kStatusOffset), 0x3u);
  // v2: rx_avail bit5 | tx_ready bit4 | fifo level 1.
  EXPECT_EQ(dev_read32(v2, Uart::kStatusOffset), 0x31u);
}

TEST(Uart, TxBusyWhileShifting) {
  IrqLines irqs;
  Uart uart(1, irqs, 2);
  dev_write32(uart, Uart::kDataOffset, 'a');
  EXPECT_EQ(dev_read32(uart, Uart::kStatusOffset) & 1u, 0u);  // busy
  uart.tick(8);
  EXPECT_EQ(dev_read32(uart, Uart::kStatusOffset) & 1u, 1u);  // ready again
}

TEST(Uart, LoopbackFeedsReceiver) {
  IrqLines irqs;
  Uart uart(1, irqs, 2);
  dev_write32(uart, Uart::kCtrlOffset, Uart::kCtrlLoopback);
  dev_write32(uart, Uart::kDataOffset, 'Z');
  EXPECT_EQ(dev_read32(uart, Uart::kDataOffset), static_cast<std::uint32_t>('Z'));
}

TEST(Uart, RxIrqRaisedWhenEnabled) {
  IrqLines irqs;
  Uart uart(1, irqs, 5);
  uart.inject_rx("q");
  EXPECT_EQ(irqs.pending(), 0u);  // irq not enabled yet
  dev_write32(uart, Uart::kCtrlOffset, Uart::kCtrlRxIrqEnable);
  EXPECT_EQ(irqs.pending(), 1u << 5);
}

// -------------------------------------------------------------------- nvm --

class NvmTest : public ::testing::Test {
 protected:
  NvmTest() : nvm_(derivative_a(), irqs_) {}

  void unlock() {
    dev_write32(nvm_, NvmController::kLockOffset, derivative_a().nvm_key1);
    dev_write32(nvm_, NvmController::kLockOffset, derivative_a().nvm_key2);
  }

  void program(std::uint32_t addr, std::uint32_t data) {
    dev_write32(nvm_, NvmController::kAddrOffset, addr);
    dev_write32(nvm_, NvmController::kDataOffset, data);
    dev_write32(nvm_, NvmController::kCmdOffset,
                derivative_a().nvm_cmd_program);
    nvm_.tick(derivative_a().nvm_program_latency);
  }

  IrqLines irqs_;
  NvmController nvm_;
};

TEST_F(NvmTest, ProgramWhileLockedSetsLockError) {
  dev_write32(nvm_, NvmController::kAddrOffset, 0);
  dev_write32(nvm_, NvmController::kDataOffset, 0x1234);
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  EXPECT_TRUE(dev_read32(nvm_, NvmController::kStatusOffset) &
              NvmController::kStatusLockError);
  EXPECT_EQ(nvm_.word_at(0), 0xFFFF'FFFFu);  // untouched
}

TEST_F(NvmTest, UnlockSequenceThenProgram) {
  unlock();
  EXPECT_FALSE(nvm_.locked());
  program(0x10, 0xCAFE'F00D);
  EXPECT_EQ(nvm_.word_at(0x10), 0xCAFE'F00Du);
  EXPECT_EQ(nvm_.programs_done(), 1u);
}

TEST_F(NvmTest, WrongKeyRelocks) {
  dev_write32(nvm_, NvmController::kLockOffset, derivative_a().nvm_key1);
  dev_write32(nvm_, NvmController::kLockOffset, 0xDEAD);  // wrong key2
  EXPECT_TRUE(nvm_.locked());
}

TEST_F(NvmTest, ProgramOnlyClearsBits) {
  unlock();
  program(0, 0x0F0F'0F0F);
  program(0, 0x00FF'00FF);
  // Flash AND semantics: second program cannot set bits back.
  EXPECT_EQ(nvm_.word_at(0), 0x0F0F'0F0Fu & 0x00FF'00FFu);
}

TEST_F(NvmTest, EraseRestoresPageToFF) {
  unlock();
  program(0x20, 0);
  dev_write32(nvm_, NvmController::kAddrOffset, 0x20);
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_erase);
  nvm_.tick(derivative_a().nvm_erase_latency);
  EXPECT_EQ(nvm_.word_at(0x20), 0xFFFF'FFFFu);
  EXPECT_EQ(nvm_.erases_done(), 1u);
}

TEST_F(NvmTest, BusyUntilLatencyElapses) {
  unlock();
  dev_write32(nvm_, NvmController::kAddrOffset, 0);
  dev_write32(nvm_, NvmController::kDataOffset, 0);
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  EXPECT_TRUE(nvm_.busy());
  nvm_.tick(derivative_a().nvm_program_latency - 1);
  EXPECT_TRUE(nvm_.busy());
  EXPECT_EQ(nvm_.word_at(0), 0xFFFF'FFFFu);  // not yet committed
  nvm_.tick(1);
  EXPECT_FALSE(nvm_.busy());
  EXPECT_EQ(nvm_.word_at(0), 0u);
}

TEST_F(NvmTest, CommandWhileBusyIsError) {
  unlock();
  dev_write32(nvm_, NvmController::kAddrOffset, 0);
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  EXPECT_TRUE(dev_read32(nvm_, NvmController::kStatusOffset) &
              NvmController::kStatusCmdError);
}

TEST_F(NvmTest, DerivativeCommandOpcodesDiffer) {
  // Derivative C revs the command opcodes; A's program opcode must be
  // rejected by a C controller.
  IrqLines irqs;
  NvmController nvm_c(derivative_c(), irqs);
  dev_write32(nvm_c, NvmController::kLockOffset, derivative_c().nvm_key1);
  dev_write32(nvm_c, NvmController::kLockOffset, derivative_c().nvm_key2);
  dev_write32(nvm_c, NvmController::kAddrOffset, 0);
  dev_write32(nvm_c, NvmController::kCmdOffset,
              derivative_a().nvm_cmd_program);  // stale opcode
  EXPECT_TRUE(dev_read32(nvm_c, NvmController::kStatusOffset) &
              NvmController::kStatusCmdError);
}

TEST_F(NvmTest, MisalignedOrOutOfRangeProgramRejected) {
  unlock();
  dev_write32(nvm_, NvmController::kAddrOffset, 2);  // misaligned
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  EXPECT_TRUE(dev_read32(nvm_, NvmController::kStatusOffset) &
              NvmController::kStatusCmdError);
  dev_write32(nvm_, NvmController::kStatusOffset,
              NvmController::kStatusCmdError);  // clear
  dev_write32(nvm_, NvmController::kAddrOffset,
              derivative_a().nvm_total_bytes());
  dev_write32(nvm_, NvmController::kCmdOffset, derivative_a().nvm_cmd_program);
  EXPECT_TRUE(dev_read32(nvm_, NvmController::kStatusOffset) &
              NvmController::kStatusCmdError);
}

// ------------------------------------------------------------------ timer --

TEST(Timer, CountsWithPrescaleAndMatches) {
  IrqLines irqs;
  Timer t(4, irqs, 3);
  dev_write32(t, Timer::kCompareOffset, 5);
  dev_write32(t, Timer::kCtrlOffset, Timer::kCtrlEnable | Timer::kCtrlIrqEnable);
  t.tick(19);  // 19/4 = 4 steps
  EXPECT_EQ(t.count(), 4u);
  EXPECT_FALSE(t.matched());
  t.tick(5);  // residue 3 + 5 = 8 → 2 more steps
  EXPECT_TRUE(t.matched());
  EXPECT_EQ(irqs.pending(), 1u << 3);
}

TEST(Timer, DisabledTimerHolds) {
  IrqLines irqs;
  Timer t(1, irqs, 3);
  t.tick(100);
  EXPECT_EQ(t.count(), 0u);
}

TEST(Timer, AutoClearWrapsAtCompare) {
  IrqLines irqs;
  Timer t(1, irqs, 3);
  dev_write32(t, Timer::kCompareOffset, 10);
  dev_write32(t, Timer::kCtrlOffset,
              Timer::kCtrlEnable | Timer::kCtrlAutoClear);
  t.tick(25);
  EXPECT_EQ(t.count(), 5u);  // wrapped twice
}

TEST(Timer, StatusWriteOneClears) {
  IrqLines irqs;
  Timer t(1, irqs, 3);
  dev_write32(t, Timer::kCompareOffset, 1);
  dev_write32(t, Timer::kCtrlOffset, Timer::kCtrlEnable);
  t.tick(1);
  EXPECT_TRUE(t.matched());
  dev_write32(t, Timer::kStatusOffset, 1);
  EXPECT_FALSE(t.matched());
}

// ------------------------------------------------------------------- intc --

TEST(Intc, PriorityAndMasking) {
  IrqLines irqs;
  InterruptController intc(irqs);
  irqs.raise(5);
  irqs.raise(2);
  EXPECT_FALSE(intc.highest_priority().has_value());  // nothing enabled
  dev_write32(intc, InterruptController::kEnableOffset, (1u << 5) | (1u << 2));
  EXPECT_EQ(intc.highest_priority(), 2);  // lowest line wins
  dev_write32(intc, InterruptController::kPendingOffset, 1u << 2);  // w1c
  EXPECT_EQ(intc.highest_priority(), 5);
}

// ---------------------------------------------------------------- simctrl --

TEST(SimCtrl, FirstVerdictWins) {
  SimControl sc(0);
  dev_write32(sc, SimControl::kResultOffset, SimControl::kFailMagic);
  dev_write32(sc, SimControl::kResultOffset, SimControl::kPassMagic);
  EXPECT_EQ(sc.verdict(), Verdict::Fail);
}

TEST(SimCtrl, ConsoleCollectsBytes) {
  SimControl sc(0);
  for (char c : std::string("ok")) {
    dev_write32(sc, SimControl::kConsoleOffset,
                static_cast<std::uint32_t>(c));
  }
  EXPECT_EQ(sc.console(), "ok");
}

// ----------------------------------------------------------- global layer --

TEST(GlobalLayer, RegisterDefsFollowNamingStyle) {
  std::string a = register_defs_source(derivative_a());
  EXPECT_NE(a.find("PMCTRL .EQU 0xe0000000"), std::string::npos);
  EXPECT_NE(a.find("UARTSTAT"), std::string::npos);

  std::string d = register_defs_source(derivative_d());
  EXPECT_EQ(d.find("PMCTRL"), std::string::npos);
  EXPECT_NE(d.find("PM_CONTROL .EQU 0xe0010000"), std::string::npos);
}

TEST(GlobalLayer, EmbeddedSoftwareVersionsDifferAsInFig7) {
  std::string v1 = embedded_software_source(derivative_a());
  EXPECT_NE(v1.find("ES_Init_Register:"), std::string::npos);
  EXPECT_NE(v1.find("STORE [a4], d4"), std::string::npos);

  std::string v2 = embedded_software_source(derivative_c());
  EXPECT_NE(v2.find("ES_Init_Register:"), std::string::npos);
  EXPECT_NE(v2.find("STORE [a5], d5"), std::string::npos);  // swapped inputs

  std::string v3 = embedded_software_source(derivative_d());
  EXPECT_EQ(v3.find("ES_Init_Register:"), std::string::npos);
  EXPECT_NE(v3.find("ES_InitReg:"), std::string::npos);  // renamed
}

// -------------------------------------------------------- board end-to-end --

class BoardTest : public ::testing::Test {
 protected:
  /// Assembles `test_source` against derivative A's global layer and links.
  std::optional<advm::assembler::Image> build(std::string_view test_source,
                                              const DerivativeSpec& spec) {
    VirtualFileSystem vfs;
    vfs.write("/global/register_defs.inc", register_defs_source(spec));
    vfs.write("/global/Embedded_Software.asm",
              embedded_software_source(spec));
    advm::assembler::AssemblerOptions opts;
    opts.include_dirs = {"/global"};
    advm::assembler::Assembler assembler(vfs, diags_, opts);
    auto test = assembler.assemble_source("/test.asm", test_source);
    auto es = assembler.assemble_file("/global/Embedded_Software.asm");
    if (!test || !es) {
      ADD_FAILURE() << diags_.to_string();
      return std::nullopt;
    }
    std::vector<advm::assembler::ObjectFile> objects{test->object, es->object};
    advm::assembler::LinkOptions lo;
    lo.code_base = spec.code_base();
    lo.data_base = spec.data_base();
    return advm::assembler::link(objects, lo, diags_);
  }

  DiagnosticEngine diags_;
};

// A directed test that exercises the paper's Fig 6 flow end to end: select
// a page via INSERT into the control register, write data, read it back.
const char* kPageTest = R"(
.INCLUDE register_defs.inc
TEST_PAGE .EQU 6
_main:
 LOAD d14, [PMCTRL]
 INSERT d14, d14, TEST_PAGE, 0, 5
 STORE [PMCTRL], d14
 MOV d0, 0x5A5A
 STORE [PMDATA], d0
 LOAD d1, [PMDATA]
 CMP d1, 0x5A5A
 JNE .fail
 LOAD d2, 0x600D600D
 STORE [SIMRES], d2
 HALT
.fail:
 LOAD d2, 0x0BAD0BAD
 STORE [SIMRES], d2
 HALT
)";

TEST_F(BoardTest, PageTestPassesOnAllSixPlatforms) {
  auto image = build(kPageTest, derivative_a());
  ASSERT_TRUE(image.has_value()) << diags_.to_string();

  std::vector<std::uint64_t> digests;
  for (auto kind : advm::sim::kAllPlatforms) {
    Board board(derivative_a(), kind);
    std::string error;
    ASSERT_TRUE(board.load(*image, &error)) << error;
    auto outcome = board.run();
    EXPECT_TRUE(outcome.passed())
        << advm::sim::to_string(kind) << ": verdict "
        << to_string(outcome.verdict) << ", stop "
        << advm::sim::to_string(outcome.machine.reason);
    EXPECT_EQ(board.page_module().selected_page(), 6u);
    digests.push_back(board.machine().state_digest());
  }
  // Identical architectural state everywhere — the paper's core premise.
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]);
  }
}

TEST_F(BoardTest, CycleCountsDifferButResultsMatch) {
  auto image = build(kPageTest, derivative_a());
  ASSERT_TRUE(image.has_value());

  Board golden(derivative_a(), PlatformKind::GoldenModel);
  Board rtl(derivative_a(), PlatformKind::RtlSim);
  std::string error;
  ASSERT_TRUE(golden.load(*image, &error));
  ASSERT_TRUE(rtl.load(*image, &error));
  auto g = golden.run();
  auto r = rtl.run();
  EXPECT_TRUE(g.passed());
  EXPECT_TRUE(r.passed());
  EXPECT_EQ(g.machine.instructions, r.machine.instructions);
  EXPECT_GT(r.machine.cycles, g.machine.cycles);  // pipeline model charges more
}

TEST_F(BoardTest, ModeledWallClockOrdersPlatforms) {
  auto image = build(kPageTest, derivative_a());
  ASSERT_TRUE(image.has_value());
  double gate_time = 0;
  double silicon_time = 0;
  for (auto kind : {PlatformKind::GateSim, PlatformKind::ProductSilicon}) {
    Board board(derivative_a(), kind);
    std::string error;
    ASSERT_TRUE(board.load(*image, &error));
    auto outcome = board.run();
    if (kind == PlatformKind::GateSim) gate_time = outcome.modeled_seconds;
    if (kind == PlatformKind::ProductSilicon)
      silicon_time = outcome.modeled_seconds;
  }
  EXPECT_GT(gate_time, silicon_time * 1000);
}

TEST_F(BoardTest, TraceOnlyOnVisibilityPlatforms) {
  auto image = build(kPageTest, derivative_a());
  ASSERT_TRUE(image.has_value());
  advm::sim::RecordingTrace trace;

  Board rtl(derivative_a(), PlatformKind::RtlSim);
  EXPECT_TRUE(rtl.attach_trace(&trace));

  Board accel(derivative_a(), PlatformKind::Accelerator);
  EXPECT_FALSE(accel.attach_trace(&trace));

  Board product(derivative_a(), PlatformKind::ProductSilicon);
  std::uint32_t v = 0;
  EXPECT_FALSE(product.debug_read_d(0, v));
  Board bondout(derivative_a(), PlatformKind::Bondout);
  EXPECT_TRUE(bondout.debug_read_d(0, v));
}

TEST_F(BoardTest, EmbeddedSoftwareCallWorks) {
  // Calls ES_Uart_Send_Byte through the ROM and checks the UART log —
  // proving the global layer links and executes.
  const char* source = R"(
.INCLUDE register_defs.inc
_main:
 MOV d4, 'K'
 LOAD a12, ES_Uart_Send_Byte
 CALL a12
 LOAD d2, 0x600D600D
 STORE [SIMRES], d2
 HALT
)";
  auto image = build(source, derivative_a());
  ASSERT_TRUE(image.has_value()) << diags_.to_string();
  Board board(derivative_a(), PlatformKind::GoldenModel);
  std::string error;
  ASSERT_TRUE(board.load(*image, &error)) << error;
  auto outcome = board.run();
  EXPECT_TRUE(outcome.passed());
  EXPECT_EQ(board.uart().transmitted(), "K");
}

TEST_F(BoardTest, ConsoleOutputCaptured) {
  const char* source = R"(
.INCLUDE register_defs.inc
_main:
 MOV d0, 'h'
 STORE [SIMCON], d0
 MOV d0, 'i'
 STORE [SIMCON], d0
 LOAD d2, 0x600D600D
 STORE [SIMRES], d2
 HALT
)";
  auto image = build(source, derivative_a());
  ASSERT_TRUE(image.has_value());
  Board board(derivative_a(), PlatformKind::GoldenModel);
  std::string error;
  ASSERT_TRUE(board.load(*image, &error));
  auto outcome = board.run();
  EXPECT_EQ(outcome.console, "hi");
}

TEST_F(BoardTest, TestWithoutVerdictIsNotAPass) {
  const char* source = ".INCLUDE register_defs.inc\n_main: HALT\n";
  auto image = build(source, derivative_a());
  ASSERT_TRUE(image.has_value());
  Board board(derivative_a(), PlatformKind::GoldenModel);
  std::string error;
  ASSERT_TRUE(board.load(*image, &error));
  auto outcome = board.run();
  EXPECT_EQ(outcome.verdict, Verdict::None);
  EXPECT_FALSE(outcome.passed());
}

TEST_F(BoardTest, GateSimFlagsUninitializedRegisterUse) {
  const char* source = R"(
.INCLUDE register_defs.inc
_main:
 ADD d1, d2, d3          ; d2/d3 never written
 LOAD d2, 0x600D600D
 STORE [SIMRES], d2
 HALT
)";
  auto image = build(source, derivative_a());
  ASSERT_TRUE(image.has_value());
  Board gate(derivative_a(), PlatformKind::GateSim);
  std::string error;
  ASSERT_TRUE(gate.load(*image, &error));
  auto outcome = gate.run();
  EXPECT_GE(outcome.x_register_reads, 2u);

  Board golden(derivative_a(), PlatformKind::GoldenModel);
  ASSERT_TRUE(golden.load(*image, &error));
  EXPECT_EQ(golden.run().x_register_reads, 0u);
}

TEST_F(BoardTest, ImageOutsideMemoryMapRejected) {
  advm::assembler::Image image;
  advm::assembler::Segment segment;
  segment.base = 0xDEAD'0000;
  segment.bytes = {1, 2, 3};
  image.segments.push_back(std::move(segment));
  image.entry = 0xDEAD'0000;
  Board board(derivative_a(), PlatformKind::GoldenModel);
  std::string error;
  EXPECT_FALSE(board.load(image, &error));
  EXPECT_NE(error.find("SC88-A"), std::string::npos);
}

TEST_F(BoardTest, InterruptDrivenTimerTest) {
  // Installs an IRQ handler, enables the timer, waits for the interrupt.
  const char* source = R"(
.INCLUDE register_defs.inc
VT .EQU 0x00100000        ; derivative A RAM base = vector table
_main:
 LOAD d0, timer_handler
 STORE [VT + 4 * 19], d0  ; IRQ line 3 -> vector 16+3
 MOV d0, 50
 STORE [TIMCMP], d0
 MOV d0, 3                ; enable | irq_enable
 STORE [TIMCTRL], d0
 MOV d0, 8                ; enable line 3 in the INTC
 STORE [ICENAB], d0
 MOV d5, 0
 ENABLE
.wait:
 CMP d5, 0
 JEQ .wait
 LOAD d2, 0x600D600D
 STORE [SIMRES], d2
 HALT
timer_handler:
 MOV d5, 1
 MOV d0, 8
 STORE [ICPEND], d0       ; clear the line
 RETI
)";
  auto image = build(source, derivative_a());
  ASSERT_TRUE(image.has_value()) << diags_.to_string();
  Board board(derivative_a(), PlatformKind::GoldenModel);
  std::string error;
  ASSERT_TRUE(board.load(*image, &error));
  auto outcome = board.run(100000);
  EXPECT_TRUE(outcome.passed())
      << to_string(outcome.verdict) << " "
      << advm::sim::to_string(outcome.machine.reason);
}

}  // namespace
