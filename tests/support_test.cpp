// Unit tests for the support layer: text utilities, VFS, hashing, RNG,
// diagnostics.
#include <gtest/gtest.h>

#include <set>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "support/diagnostics.h"
#include "support/disk.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/text.h"
#include "support/vfs.h"

namespace {

using namespace advm::support;

// ---------------------------------------------------------------- text ----

TEST(Text, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Text, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Text, SplitLinesHandlesCrLfAndFinalLine) {
  auto lines = split_lines("one\r\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(Text, SplitLinesEmptyInput) {
  EXPECT_TRUE(split_lines("").empty());
}

TEST(Text, CaseHelpers) {
  EXPECT_EQ(to_upper("MixedCase123"), "MIXEDCASE123");
  EXPECT_EQ(to_lower("MixedCase123"), "mixedcase123");
  EXPECT_TRUE(equals_nocase(".INCLUDE", ".include"));
  EXPECT_FALSE(equals_nocase("abc", "abcd"));
  EXPECT_TRUE(starts_with_nocase(".ENDM  ; comment", ".endm"));
  EXPECT_FALSE(starts_with_nocase("x", "xyz"));
}

TEST(Text, ParseIntegerDecimalHexBinary) {
  EXPECT_EQ(parse_integer("42"), 42);
  EXPECT_EQ(parse_integer("0x2A"), 42);
  EXPECT_EQ(parse_integer("0b101010"), 42);
  EXPECT_EQ(parse_integer("-7"), -7);
  EXPECT_EQ(parse_integer("1_000"), 1000);
  EXPECT_EQ(parse_integer("'A'"), 65);
}

TEST(Text, ParseIntegerRejectsMalformed) {
  EXPECT_FALSE(parse_integer("").has_value());
  EXPECT_FALSE(parse_integer("0x").has_value());
  EXPECT_FALSE(parse_integer("12ab").has_value());
  EXPECT_FALSE(parse_integer("0b102").has_value());
  EXPECT_FALSE(parse_integer("--3").has_value());
}

TEST(Text, ParseIntegerSixtyFourBitBoundary) {
  // Exactly 64 bits is the widest representable literal (all-ones reads as
  // -1, the classic assembler idiom); wider is malformed, not UB.
  EXPECT_EQ(parse_integer("0xFFFFFFFFFFFFFFFF"), -1);
  EXPECT_EQ(parse_integer("0FFFFFFFFFFFFFFFFh"), -1);
  EXPECT_EQ(parse_integer("18446744073709551615"), -1);  // 2^64 - 1
  EXPECT_EQ(parse_integer("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(parse_integer("0x10000000000000000").has_value());
  EXPECT_FALSE(parse_integer("11112222333344445h").has_value());
  EXPECT_FALSE(parse_integer("18446744073709551616").has_value());  // 2^64
}

TEST(Text, ReplaceAll) {
  EXPECT_EQ(replace_all("a@b@c", "@", "__1"), "a__1b__1c");
  EXPECT_EQ(replace_all("none", "@", "x"), "none");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Text, CountLines) {
  EXPECT_EQ(count_lines(""), 0u);
  EXPECT_EQ(count_lines("one"), 1u);
  EXPECT_EQ(count_lines("one\n"), 1u);
  EXPECT_EQ(count_lines("one\ntwo"), 2u);
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

// ----------------------------------------------------------------- vfs ----

TEST(Vfs, NormalizePath) {
  EXPECT_EQ(normalize_path("a/b/c"), "/a/b/c");
  EXPECT_EQ(normalize_path("/a//b/"), "/a/b");
  EXPECT_EQ(normalize_path("/a/./b"), "/a/b");
  EXPECT_EQ(normalize_path("/a/x/../b"), "/a/b");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path("../.."), "/");
}

TEST(Vfs, PathHelpers) {
  EXPECT_EQ(parent_path("/a/b/c"), "/a/b");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(base_name("/a/b/c.inc"), "c.inc");
  EXPECT_EQ(join_path("/a/b", "c.asm"), "/a/b/c.asm");
  EXPECT_EQ(join_path("/a/b/", "/c"), "/a/b/c");
}

TEST(Vfs, WriteReadRoundTrip) {
  VirtualFileSystem vfs;
  vfs.write("/env/Globals.inc", "PAGE .EQU 8\n");
  EXPECT_TRUE(vfs.exists("/env/Globals.inc"));
  EXPECT_EQ(vfs.read("/env/Globals.inc"), "PAGE .EQU 8\n");
  EXPECT_FALSE(vfs.read("/env/missing").has_value());
  EXPECT_THROW((void)vfs.read_required("/env/missing"), std::out_of_range);
}

TEST(Vfs, ListTreeIsSortedAndScoped) {
  VirtualFileSystem vfs;
  vfs.write("/env/b.asm", "b");
  vfs.write("/env/a.asm", "a");
  vfs.write("/other/c.asm", "c");
  auto tree = vfs.list_tree("/env");
  ASSERT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree[0], "/env/a.asm");
  EXPECT_EQ(tree[1], "/env/b.asm");
}

TEST(Vfs, ListDirShowsImmediateChildren) {
  VirtualFileSystem vfs;
  vfs.write("/env/sub/x.asm", "x");
  vfs.write("/env/sub/y.asm", "y");
  vfs.write("/env/top.asm", "t");
  auto entries = vfs.list_dir("/env");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "sub/");
  EXPECT_EQ(entries[1], "top.asm");
}

TEST(Vfs, RemoveTree) {
  VirtualFileSystem vfs;
  vfs.write("/env/a", "1");
  vfs.write("/env/b/c", "2");
  vfs.write("/keep", "3");
  EXPECT_EQ(vfs.remove_tree("/env"), 2u);
  EXPECT_FALSE(vfs.dir_exists("/env"));
  EXPECT_TRUE(vfs.exists("/keep"));
}

TEST(Vfs, CopyTreePreservesContent) {
  VirtualFileSystem vfs;
  vfs.write("/src/f1", "alpha");
  vfs.write("/src/d/f2", "beta");
  vfs.copy_tree("/src", "/dst");
  EXPECT_EQ(vfs.read("/dst/f1"), "alpha");
  EXPECT_EQ(vfs.read("/dst/d/f2"), "beta");
  EXPECT_EQ(vfs.read("/src/f1"), "alpha");  // source untouched
}

TEST(Vfs, ExportTreeToAnotherVfs) {
  VirtualFileSystem a;
  VirtualFileSystem b;
  a.write("/env/x", "payload");
  a.export_tree("/env", b, "/snapshot");
  EXPECT_EQ(b.read("/snapshot/x"), "payload");
}

// ---------------------------------------------------------------- hash ----

TEST(Hash, TreeHashIsOrderIndependentOfInsertion) {
  VirtualFileSystem a;
  VirtualFileSystem b;
  a.write("/t/1", "one");
  a.write("/t/2", "two");
  b.write("/t/2", "two");
  b.write("/t/1", "one");
  EXPECT_EQ(hash_tree(a, "/t"), hash_tree(b, "/t"));
}

TEST(Hash, TreeHashDetectsContentChange) {
  VirtualFileSystem vfs;
  vfs.write("/t/file", "v1");
  auto before = hash_tree(vfs, "/t");
  vfs.write("/t/file", "v2");
  EXPECT_NE(before, hash_tree(vfs, "/t"));
}

TEST(Hash, TreeHashIsPrefixRelative) {
  VirtualFileSystem vfs;
  vfs.write("/a/x", "same");
  vfs.write("/b/x", "same");
  EXPECT_EQ(hash_tree(vfs, "/a"), hash_tree(vfs, "/b"));
}

TEST(Hash, ToStringIs16HexDigits) {
  EXPECT_EQ(hash_to_string(0), "0000000000000000");
  EXPECT_EQ(hash_to_string(0xdeadbeefULL), "00000000deadbeef");
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, RangeCoversAllValuesEventually) {
  SplitMix64 rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.range(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

// -------------------------------------------------------------- diags -----

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticEngine de;
  de.note("n.code", "a note");
  de.warning("w.code", "a warning");
  de.error("e.code", "an error");
  EXPECT_EQ(de.error_count(), 1u);
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_TRUE(de.has_errors());
  EXPECT_TRUE(de.has_code("w.code"));
  EXPECT_EQ(de.count_code("e.code"), 1u);
  EXPECT_FALSE(de.has_code("missing"));
}

TEST(Diagnostics, RenderingIncludesLocationAndCode) {
  DiagnosticEngine de;
  de.error("asm.test", "boom", {"file.asm", 12, 3});
  EXPECT_EQ(de.all()[0].to_string(), "file.asm:12:3: error [asm.test]: boom");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine de;
  de.error("e", "x");
  de.clear();
  EXPECT_FALSE(de.has_errors());
  EXPECT_TRUE(de.all().empty());
}

// ---------------------------------------------------------------- disk ----

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("advm_disk_test_" + std::to_string(::getpid()));
  }
  ~DiskTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(DiskTest, ExportImportRoundTripPreservesTree) {
  VirtualFileSystem vfs;
  vfs.write("/env/Abstraction_Layer/Globals.inc", "PAGE .EQU 8\n");
  vfs.write("/env/TEST_1/test.asm", "_main: HALT\n");
  vfs.write("/env/TESTPLAN.TXT", "plan");

  EXPECT_EQ(export_to_disk(vfs, "/env", dir_.string()), 3u);

  VirtualFileSystem back;
  EXPECT_EQ(import_from_disk(back, dir_.string(), "/env"), 3u);
  EXPECT_EQ(hash_tree(vfs, "/env"), hash_tree(back, "/env"));
  EXPECT_EQ(back.read("/env/TEST_1/test.asm"), "_main: HALT\n");
}

TEST_F(DiskTest, ImportMissingDirectoryThrows) {
  VirtualFileSystem vfs;
  EXPECT_THROW(
      import_from_disk(vfs, (dir_ / "nonexistent").string(), "/x"),
      std::runtime_error);
}

TEST_F(DiskTest, ExportOverwritesStaleFiles) {
  VirtualFileSystem vfs;
  vfs.write("/env/file.txt", "v1");
  export_to_disk(vfs, "/env", dir_.string());
  vfs.write("/env/file.txt", "v2-longer-content");
  export_to_disk(vfs, "/env", dir_.string());
  VirtualFileSystem back;
  import_from_disk(back, dir_.string(), "/env");
  EXPECT_EQ(back.read("/env/file.txt"), "v2-longer-content");
}

// ---------------------------------------------------------------- json ----

TEST(Json, BmpEscapesDecodeToUtf8) {
  const auto ascii = json::parse(R"("A")");
  ASSERT_TRUE(ascii.has_value());
  EXPECT_EQ(ascii->as_string(), "A");
  const auto two_byte = json::parse(R"("\u00E9")");
  ASSERT_TRUE(two_byte.has_value());
  EXPECT_EQ(two_byte->as_string(), "\xC3\xA9");  // é
  const auto three_byte = json::parse(R"("\u20ac")");
  ASSERT_TRUE(three_byte.has_value());
  EXPECT_EQ(three_byte->as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, SurrogatePairCombinesIntoTheAstralCodePoint) {
  // U+1F600 as its escaped surrogate pair must decode to the 4-byte
  // UTF-8 sequence, not two lone 3-byte halves (invalid UTF-8).
  const auto doc = json::parse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "\xF0\x9F\x98\x80");
  // Lowercase hex and a pair inside surrounding text both work.
  const auto mixed = json::parse(R"("ok \ud83d\ude00!")");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->as_string(), "ok \xF0\x9F\x98\x80!");
}

TEST(Json, SurrogatePairRoundTripsWithTheRawUtf8Form) {
  // The writer side never escapes non-ASCII (raw UTF-8 passes through),
  // so the escaped-pair spelling and the raw spelling of the same code
  // point must parse to identical bytes.
  const auto escaped = json::parse(R"("\uD83D\uDE00")");
  const auto raw = json::parse("\"\xF0\x9F\x98\x80\"");
  ASSERT_TRUE(escaped.has_value());
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(escaped->as_string(), raw->as_string());
}

TEST(Json, UnpairedSurrogateHalvesAreATypedParseError) {
  std::string error;
  EXPECT_FALSE(json::parse(R"("\uD83D")", &error).has_value());
  EXPECT_NE(error.find("unpaired high surrogate"), std::string::npos);
  EXPECT_FALSE(json::parse(R"("\uDE00")", &error).has_value());
  EXPECT_NE(error.find("unpaired low surrogate"), std::string::npos);
  // High half followed by a non-escape, a non-\u escape, or another
  // high half: all unpaired.
  EXPECT_FALSE(json::parse(R"("\uD83Dxyz")", &error).has_value());
  EXPECT_FALSE(json::parse(R"("\uD83D\n")", &error).has_value());
  EXPECT_FALSE(json::parse(R"("\uD83D\uD83D")", &error).has_value());
  // Truncated low half.
  EXPECT_FALSE(json::parse(R"("\uD83D\uDE")", &error).has_value());
}

}  // namespace
