// advm — command-line driver for the ADVM toolchain.
//
// The workflow a verification team would actually run, against environments
// that live on disk (paper §3 keeps them under revision control):
//
//   advm init  <dir> [--derivative SC88-A] [--tests N] [--backend B]
//                    [--shards N] [--jobs N]             create a system env
//   advm run   <dir> [--derivative D] [--platform P] [--jobs N]
//                    [--backend B] [--cache-dir DIR]     build + regress
//   advm matrix <dir> --derivatives A,B,C --platforms P,Q [--jobs N]
//                    [--backend thread|process] [--shards N]
//                    [--cache-dir DIR]                   derivative × platform
//                                                        cube, one report per
//                                                        cell + roll-up
//   advm port  <dir> --to SC88-C                         retarget in place
//   advm check <dir> [--derivative D]                    violation report
//   advm release <dir> --name R1 [--derivative D] [--platform P] [--jobs N]
//                                                        frozen snapshot +
//                                                        verify + regression
//   advm random <dir> --seed K [--derivative D]          random Globals.inc
//   advm worker --slice <file>                           execute one work-plan
//                                                        slice (one-shot; used
//                                                        by sharded init)
//   advm worker --serve                                  persistent worker:
//                                                        line-delimited JSON
//                                                        requests on stdin
//                                                        (spawned as a pool by
//                                                        the process backend)
//
// Every verb is the same thin adapter: parse arguments into a typed
// request, run it on one advm::Session (which owns the VFS, object cache,
// board pool and worker-pool policy), render the typed result. `--format
// json` (any verb) renders the result as the stable machine-readable
// document from src/advm/report.h instead of the human text.
//
// `--backend process` shards matrix cells (or corpus environments, for
// init) across `advm worker` subprocesses — this very binary, re-entered
// through the worker verb. `--cache-dir` points the content-addressed
// object cache at a persistent directory that workers and consecutive
// invocations share.
//
// Environments are imported from disk into the session's VFS, transformed,
// and written back — so `port` literally edits only the abstraction layer
// files in your working copy.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advm/exec/backend.h"
#include "advm/exec/workerpool.h"
#include "advm/exec/workplan.h"
#include "advm/report.h"
#include "advm/session.h"
#include "soc/derivative.h"
#include "support/disk.h"
#include "support/hash.h"
#include "support/text.h"

namespace {

using namespace advm;
using namespace advm::core;

constexpr const char* kVfsRoot = "/SYS";

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> options;
  bool json = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value = i + 1 < argc ? argv[i + 1] : "";
      if (!value.empty() && value.rfind("--", 0) != 0) {
        args.options.insert_or_assign(key, std::move(value));
        ++i;
      } else {
        // insert_or_assign with a sized string: `options[key] = "1"` hits
        // GCC 12's -Wrestrict false positive (PR105651) under -O3 -Werror.
        args.options.insert_or_assign(key, std::string(1, '1'));
      }
    } else if (positional++ == 0) {
      args.dir = arg;
    }
  }
  auto format = args.options.find("format");
  args.json = format != args.options.end() && format->second == "json";
  return args;
}

/// Parses a numeric option strictly: digits only. strtoul would silently
/// accept "-1" (wrapping to ULONG_MAX — i.e. maximum fan-out, the exact
/// accident to prevent), so negative and non-numeric values come back as a
/// typed Status instead. Range validation (0 shards, absurd jobs) is the
/// Session's job — numeric values pass through so the typed error has one
/// home.
Status parse_count(const Args& args, const char* key, const char* code,
                   std::size_t* out) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return {};
  const std::string& value = it->second;
  const bool all_digits =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  // 20 digits cannot fit in 64 bits: reject before strtoul saturates.
  if (!all_digits || value.size() > 19) {
    return Status::error(std::string(code),
                         std::string("invalid --") + key + " value '" +
                             value + "' (expected a non-negative number)");
  }
  *out = std::strtoul(value.c_str(), nullptr, 10);
  return {};
}

std::string option_or(const Args& args, const char* key,
                      const char* fallback) {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

/// SessionConfig from the shared execution flags (--jobs, --shards,
/// --backend, --cache-dir). Typed Status on malformed values.
Status config_from_args(const Args& args, SessionConfig* config) {
  if (Status status = parse_count(args, "jobs", "advm.bad-jobs",
                                  &config->jobs);
      !status.ok()) {
    return status;
  }
  if (Status status = parse_count(args, "shards", "advm.bad-shards",
                                  &config->shards);
      !status.ok()) {
    return status;
  }
  const std::string backend = option_or(args, "backend", "thread");
  if (backend == "process") {
    config->backend = ExecBackendKind::Process;
  } else if (backend != "thread") {
    return Status::error("advm.bad-backend",
                         "invalid --backend value '" + backend +
                             "' (expected thread or process)");
  }
  config->cache_dir = option_or(args, "cache-dir", "");
  // --batch-threshold MS|auto|0: tiny-cell batching on the process
  // backend. "auto" (the default) lets the backend pick; 0 disables.
  const std::string batch = option_or(args, "batch-threshold", "auto");
  if (batch != "auto") {
    if (Status status =
            parse_count(args, "batch-threshold",
                        "advm.bad-batch-threshold",
                        &config->batch_threshold_ms);
        !status.ok()) {
      return status;
    }
  }
  // --request-timeout-ms MS: per-request worker deadline on the process
  // backend (0 = wait forever). Range-checked by SessionConfig::validate.
  if (Status status = parse_count(args, "request-timeout-ms",
                                  "advm.bad-timeout",
                                  &config->request_timeout_ms);
      !status.ok()) {
    return status;
  }
  if (Status status = parse_count(args, "max-respawns",
                                  "advm.bad-respawns",
                                  &config->max_respawns);
      !status.ok()) {
    return status;
  }
  // Hidden fault-injection seam (tests, the ci.sh chaos gate): the flag
  // wins over the environment so a wrapper script can still override.
  config->fault_plan = option_or(args, "fault-plan", "");
  if (config->fault_plan.empty()) {
    if (const char* env = std::getenv("ADVM_FAULT_PLAN")) {
      config->fault_plan = env;
    }
  }
  return {};
}

/// Renders a pre-request failure (bad flag value) through the same
/// contract request validation uses: JSON error document on stdout in
/// --format json mode, bare message on stderr otherwise, exit code 2.
int render_status(const Args& args, const char* verb, const Status& status) {
  if (args.json) {
    std::cout << error_to_json(verb, status) << "\n";
  } else {
    std::cerr << status.message << "\n";
  }
  return 2;
}

/// Builds a Session from the shared execution flags, with the tree at
/// `args.dir` imported under kVfsRoot. Null after a diagnostic on a bad
/// flag value. An unreadable disk tree is *not* fatal here: the failure is
/// stashed in `import_error` so that request validation (unknown
/// derivative/platform) still gets to report first — the session then
/// fails root validation and the verb substitutes the disk-level message.
std::unique_ptr<Session> make_session(const Args& args, const char* verb,
                                      std::string* import_error,
                                      bool import = true) {
  SessionConfig config;
  if (Status status = config_from_args(args, &config); !status.ok()) {
    render_status(args, verb, status);
    return nullptr;
  }
  auto session = std::make_unique<Session>(std::move(config));
  if (import) {
    try {
      support::import_from_disk(session->vfs(), args.dir, kVfsRoot);
    } catch (const std::exception& e) {
      if (import_error) *import_error = e.what();
    }
  }
  return session;
}

/// Error rendering shared by every verb: the JSON document on stdout in
/// --format json mode, the bare message on stderr otherwise. Always exit
/// code 2 (a request that failed validation never ran). A root-validation
/// failure caused by an unreadable disk tree reports the disk error.
template <typename Result>
int render_error(const Args& args, Result result,
                 const std::string& import_error = {}) {
  if (!import_error.empty() && result.status.code == "advm.bad-root") {
    result.status = Status::error("advm.import-failed", import_error);
  }
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cerr << result.status.message << "\n";
  }
  return 2;
}

/// `init --backend process`: shard corpus generation across worker
/// subprocesses. The orchestrator writes the global layer, each worker
/// generates a disjoint set of environment directories straight into the
/// output tree, and the result is byte-identical to a thread-backend init
/// (every environment is a pure function of its config + derivative).
int init_with_process_backend(const Args& args, Session& session,
                              const BuildRequest& request) {
  if (Status status = session.config().validate(); !status.ok()) {
    return render_status(args, "init", status);
  }
  const soc::DerivativeSpec* spec =
      soc::find_derivative(request.derivative);
  if (spec == nullptr) {
    BuildRequest probe = request;  // reuse Session validation + rendering
    BuildResult invalid = session.run(probe);
    return render_error(args, invalid);
  }

  SystemConfig globals_only;
  globals_only.root = kVfsRoot;
  (void)build_system(session.vfs(), globals_only, *spec);
  support::export_to_disk(session.vfs(), kVfsRoot, args.dir);

  const exec::CorpusPlan plan =
      exec::plan_corpus(request, session.config().shards);
  exec::ProcessBackendConfig process_config;
  process_config.jobs_per_worker =
      exec::divide_jobs(session.config().jobs, plan.slices.size());
  if (Status status =
          exec::generate_corpus_with_workers(plan, args.dir, process_config);
      !status.ok()) {
    return render_status(args, "init", status);
  }

  // Fold the workers' output back through the session VFS so the rendered
  // result (and its JSON document) comes from the tree that actually
  // landed on disk.
  support::import_from_disk(session.vfs(), args.dir, kVfsRoot);
  BuildResult result;
  result.derivative = spec->name;
  result.layout = layout_from_tree(session.vfs(), kVfsRoot);
  result.files = session.vfs().list_tree(kVfsRoot).size();
  for (const exec::PlannedEnvironment& env : plan.environments) {
    result.tests += env.config.test_count;
  }
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "created " << args.dir << " for " << result.derivative
              << ": " << result.files << " files, " << result.tests
              << " tests (" << plan.slices.size() << " corpus shards)\n";
  }
  return 0;
}

int cmd_init(const Args& args) {
  auto session = make_session(args, "init", nullptr, /*import=*/false);
  if (!session) return 2;

  BuildRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.tests_per_module =
      args.options.count("tests")
          ? std::strtoul(args.options.at("tests").c_str(), nullptr, 10)
          : 5;

  if (session->config().backend == ExecBackendKind::Process) {
    return init_with_process_backend(args, *session, request);
  }

  BuildResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result);

  const std::size_t written =
      support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "created " << args.dir << " for " << result.derivative
              << ": " << written << " files, " << result.tests << " tests\n";
  }
  return 0;
}

int cmd_run(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "run", &import_error);
  if (!session) return 2;

  RunRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.platform = option_or(args, "platform", "golden-model");

  RunResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << format_report(result.report);
  }
  return result.report.all_passed() ? 0 : 1;
}

int cmd_matrix(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "matrix", &import_error);
  if (!session) return 2;

  MatrixRequest request;
  request.root = kVfsRoot;
  const std::string derivatives = option_or(args, "derivatives", "SC88-A");
  const std::string platforms = option_or(args, "platforms", "golden-model");
  request.derivatives.clear();
  for (std::string_view name : support::split(derivatives, ',')) {
    request.derivatives.emplace_back(name);
  }
  request.platforms.clear();
  for (std::string_view name : support::split(platforms, ',')) {
    request.platforms.emplace_back(name);
  }

  MatrixResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    for (const auto& cell : result.cells) {
      std::cout << format_report(cell) << "\n";
    }
    std::cout << format_matrix_rollup(result);
  }
  return result.all_passed() ? 0 : 1;
}

int cmd_port(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "port", &import_error);
  if (!session) return 2;

  PortRequest request;
  request.root = kVfsRoot;
  request.to = option_or(args, "to", "");

  PortResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "ported " << args.dir << " to " << result.target << "\n"
              << "  global layer: "
              << result.repair.global_layer.files_touched() << " files\n"
              << "  abstraction layer: "
              << result.repair.abstraction_layer.files_touched() << " files, "
              << result.repair.abstraction_layer.lines().total() << " lines\n"
              << "  test layer: " << result.repair.test_layer.files_touched()
              << " files (ADVM environments: expected 0)\n";
  }
  return 0;
}

int cmd_check(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "check", &import_error);
  if (!session) return 2;

  CheckRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");

  CheckResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else if (result.report.clean()) {
    std::cout << "clean: no abstraction violations\n";
  } else {
    for (const auto& v : result.report.violations) {
      std::cout << v.file;
      if (v.loc.valid()) std::cout << ":" << v.loc.line;
      std::cout << ": [" << v.code << "] " << v.detail << "\n";
    }
    std::cout << result.report.violations.size() << " violation(s)\n";
  }
  return result.report.clean() ? 0 : 1;
}

int cmd_release(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "release", &import_error);
  if (!session) return 2;

  ReleaseRequest request;
  request.root = kVfsRoot;
  request.name = option_or(args, "name", "R1");
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.platform = option_or(args, "platform", "golden-model");

  ReleaseResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  // Persist the frozen snapshot next to the live tree (outside it, so
  // discovery and future releases never pick it up as an environment). A
  // later invocation can re-verify or re-regress it with plain `advm run`.
  const std::string snapshot_dir =
      args.dir + ".releases/" + result.release.name;
  support::export_to_disk(session->vfs(), result.release.root, snapshot_dir);

  const bool frozen_green = result.frozen && result.frozen->all_passed();
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    if (result.frozen) std::cout << format_report(*result.frozen);
    std::cout << "release " << result.release.name << ": "
              << result.release.sub_labels.size() << " sub-labels, composed "
              << support::hash_to_string(result.release.composed_hash)
              << (result.verified ? " (verified)" : " (TAMPERED)")
              << ", snapshot " << snapshot_dir << "\n";
  }
  return result.verified && frozen_green ? 0 : 1;
}

int cmd_random(const Args& args) {
  std::string import_error;
  auto session = make_session(args, "random", &import_error);
  if (!session) return 2;

  RandomRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.seed =
      args.options.count("seed")
          ? std::strtoull(args.options.at("seed").c_str(), nullptr, 10)
          : 1;

  RandomResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "seed " << result.seed << ": regenerated "
              << result.regenerated
              << " Globals.inc instance(s); TEST1_TARGET_PAGE="
              << result.values.at(GlobalDefineNames::kTest1TargetPage)
              << " TEST2_TARGET_PAGE="
              << result.values.at(GlobalDefineNames::kTest2TargetPage)
              << "\n";
  }
  return 0;
}

/// Runs the planned cells on a resident session and renders the matrix
/// shard document ({"ok":true,"verb":"worker","kind":"matrix","cells":
/// [{"index":N,"micros":U,"report":{...}}]}) — the response shape shared
/// by the one-shot --slice verb and the --serve Run command. `micros` is
/// the cell's measured wall-clock (what the orchestrator's cost model
/// records); an integer so the wire format has no locale/precision
/// pitfalls. nullopt (with the failing Status in `error`) when a cell
/// request fails.
std::optional<std::string> run_cells_document(
    Session& session, const std::vector<exec::PlannedCell>& cells,
    std::uint64_t max_instructions, Status* error) {
  std::ostringstream os;
  os << "{\"ok\":true,\"verb\":\"worker\",\"kind\":\"matrix\",\"cells\":[";
  bool first = true;
  for (const exec::PlannedCell& cell : cells) {
    RunRequest request;
    request.root = kVfsRoot;
    request.derivative = cell.derivative;
    request.platform = cell.platform;
    request.max_instructions = max_instructions;
    const auto started = std::chrono::steady_clock::now();
    RunResult result = session.run(request);
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    if (!result.status.ok()) {
      *error = result.status;
      return std::nullopt;
    }
    if (!first) os << ",";
    first = false;
    os << "{\"index\":" << cell.index << ",\"micros\":" << micros
       << ",\"report\":" << report_to_json(result.report) << "}";
  }
  os << "]}";
  return os.str();
}

/// `advm worker --serve` — the persistent-pool protocol endpoint. Reads
/// line-delimited JSON serve requests (exec::ServeRequest) from stdin and
/// answers each with a single-line JSON document on stdout: an Init
/// constructs the resident Session and imports the exported tree, every
/// Run executes its cells on that same session (warm cache, warm board
/// pool — spawn and import are paid once per worker, not per slice), a
/// Shutdown (or EOF on stdin) exits 0. A malformed request or a failed
/// Run answers with the shared error document; the worker stays resident
/// and lets the orchestrator decide.
int cmd_worker_serve() {
  const auto respond = [](const std::string& line) {
    std::cout << line << "\n" << std::flush;
  };
  std::unique_ptr<Session> session;
  // Injected faults (Init's fault_plan; empty in production). A
  // request-count clause matches exactly one value of `run_count`; a
  // cell clause matches every Run request naming its planned index.
  std::vector<exec::FaultClause> faults;
  std::size_t run_count = 0;
  const auto match_fault =
      [&](const std::vector<exec::PlannedCell>& cells)
      -> const exec::FaultClause* {
    for (const exec::FaultClause& fault : faults) {
      if (fault.cell != exec::FaultClause::kNoCell) {
        for (const exec::PlannedCell& cell : cells) {
          if (cell.index == fault.cell) return &fault;
        }
      } else if (fault.request == run_count) {
        return &fault;
      }
    }
    return nullptr;
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    const auto request = exec::parse_serve_request(line, &parse_error);
    if (!request) {
      respond(error_to_json(
          "worker", Status::error("advm.bad-serve-request", parse_error)));
      continue;
    }
    switch (request->kind) {
      case exec::ServeRequest::Kind::Init: {
        auto parsed = exec::parse_worker_fault_actions(request->fault_plan,
                                                       &parse_error);
        if (!parsed) {
          respond(error_to_json(
              "worker",
              Status::error("advm.bad-serve-request", parse_error)));
          break;
        }
        SessionConfig config;
        config.jobs = request->jobs;
        config.cache_dir = request->cache_dir;
        config.cache_max_bytes = request->cache_max_bytes;
        auto fresh = std::make_unique<Session>(std::move(config));
        try {
          support::import_from_disk(fresh->vfs(), request->tree_dir,
                                    kVfsRoot);
        } catch (const std::exception& e) {
          respond(error_to_json(
              "worker", Status::error("advm.import-failed", e.what())));
          break;
        }
        session = std::move(fresh);
        faults = std::move(*parsed);
        run_count = 0;
        respond("{\"ok\":true,\"verb\":\"worker\",\"kind\":\"serve-init\"}");
        break;
      }
      case exec::ServeRequest::Kind::Run: {
        if (!session) {
          respond(error_to_json(
              "worker", Status::error("advm.bad-serve-request",
                                      "run before init")));
          break;
        }
        run_count += 1;
        if (const exec::FaultClause* fault = match_fault(request->cells)) {
          switch (fault->action) {
            case exec::FaultClause::Action::Crash:
              // Die without a reply — the orchestrator sees EOF
              // mid-request, exactly like a segfaulting simulated test.
              std::raise(SIGKILL);
              break;
            case exec::FaultClause::Action::Exit:
              std::_Exit(3);
              break;
            case exec::FaultClause::Action::Garbage:
              respond("@@fault-injected-garbage@@");
              continue;
            case exec::FaultClause::Action::Wedge:
              // Outlive any sane request deadline; the orchestrator's
              // poll(2) timeout fires and SIGKILLs this process.
              std::this_thread::sleep_for(std::chrono::hours(1));
              break;
          }
        }
        Status error;
        const auto document = run_cells_document(
            *session, request->cells, request->max_instructions, &error);
        if (!document) {
          respond(error_to_json("worker", error));
          break;
        }
        respond(*document);
        break;
      }
      case exec::ServeRequest::Kind::Shutdown:
        respond("{\"ok\":true,\"verb\":\"worker\",\"kind\":\"shutdown\"}");
        return 0;
    }
  }
  return 0;  // EOF on stdin is the orchestrator's shutdown signal.
}

/// `advm worker --slice <file>` (one-shot, kept for the corpus path and
/// back-compat) or `advm worker --serve` (persistent pool endpoint).
/// Output is always a JSON document on stdout
/// ({"ok":true,"verb":"worker",...} or the shared error document), exit
/// code 0 when the slice executed (test failures live inside the
/// reports), 2 when it could not.
int cmd_worker(const Args& args) {
  if (args.options.count("serve")) return cmd_worker_serve();
  const auto slice_option = args.options.find("slice");
  if (slice_option == args.options.end()) {
    std::cout << error_to_json(
                     "worker",
                     Status::error("advm.bad-slice", "missing --slice file"))
              << "\n";
    return 2;
  }
  std::ifstream in(slice_option->second, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    std::cout << error_to_json(
                     "worker",
                     Status::error("advm.bad-slice", "unreadable slice file " +
                                                         slice_option->second))
              << "\n";
    return 2;
  }
  std::string parse_error;
  const auto slice = exec::parse_worker_slice(text.str(), &parse_error);
  if (!slice) {
    std::cout << error_to_json("worker",
                               Status::error("advm.bad-slice", parse_error))
              << "\n";
    return 2;
  }

  SessionConfig config;
  config.jobs = slice->jobs;
  config.cache_dir = slice->cache_dir;
  config.cache_max_bytes = slice->cache_max_bytes;
  Session session(std::move(config));

  if (slice->kind == exec::WorkerSlice::Kind::Matrix) {
    try {
      support::import_from_disk(session.vfs(), slice->tree_dir, kVfsRoot);
    } catch (const std::exception& e) {
      std::cout << error_to_json(
                       "worker", Status::error("advm.import-failed", e.what()))
                << "\n";
      return 2;
    }
    Status error;
    const auto document = run_cells_document(
        session, slice->cells, slice->max_instructions, &error);
    if (!document) {
      std::cout << error_to_json("worker", error) << "\n";
      return 2;
    }
    std::cout << *document << "\n";
    return 0;
  }

  // Corpus slice: generate this shard's environments in the session VFS
  // and export exactly those directories — the orchestrator owns the
  // global layer, and sibling shards own theirs.
  BuildRequest request;
  request.root = kVfsRoot;
  request.derivative = slice->derivative;
  for (const exec::PlannedEnvironment& env : slice->environments) {
    request.environments.push_back(env.config);
  }
  BuildResult built = session.run(request);
  if (!built.status.ok()) {
    std::cout << error_to_json("worker", built.status) << "\n";
    return 2;
  }
  std::size_t files = 0;
  std::ostringstream os;
  os << "{\"ok\":true,\"verb\":\"worker\",\"kind\":\"corpus\","
        "\"environments\":[";
  for (std::size_t i = 0; i < slice->environments.size(); ++i) {
    const std::string& name = slice->environments[i].config.name;
    try {
      files += support::export_to_disk(
          session.vfs(), std::string(kVfsRoot) + "/" + name,
          slice->tree_dir + "/" + name);
    } catch (const std::exception& e) {
      std::cout << error_to_json(
                       "worker", Status::error("advm.export-failed", e.what()))
                << "\n";
      return 2;
    }
    if (i != 0) os << ",";
    os << "\"" << json_escape(name) << "\"";
  }
  os << "],\"files\":" << files << "}";
  std::cout << os.str() << "\n";
  return 0;
}

int usage() {
  std::cerr
      << "advm — assembler-driven verification methodology toolchain\n"
         "usage:\n"
         "  advm init  <dir> [--derivative SC88-A] [--tests N]"
         " [--backend B] [--shards N] [--jobs N]\n"
         "  advm run   <dir> [--derivative D] [--platform P] [--jobs N]"
         " [--backend B] [--cache-dir DIR]\n"
         "  advm matrix <dir> [--derivatives A,B,C] [--platforms P,Q]"
         " [--jobs N]\n"
         "             [--backend thread|process] [--shards N]"
         " [--cache-dir DIR]\n"
         "             [--batch-threshold MS|auto]"
         " [--request-timeout-ms MS] [--max-respawns N]\n"
         "  advm port  <dir> --to <derivative>\n"
         "  advm check <dir> [--derivative D]\n"
         "  advm release <dir> [--name R1] [--derivative D] [--platform P]"
         " [--jobs N]\n"
         "  advm random <dir> --seed K [--derivative D]\n"
         "  advm worker --slice <file> | --serve\n"
         "options: --format json renders any verb's result as JSON\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  // The worker verb is addressed by --slice, not a positional directory.
  if (args.dir.empty() && args.command != "worker") return usage();
  // Strict like --jobs: a typo'd --format must not silently feed human
  // text to a JSON consumer.
  auto format = args.options.find("format");
  if (format != args.options.end() && format->second != "json" &&
      format->second != "text") {
    std::cerr << "invalid --format value '" << format->second
              << "' (expected json or text)\n";
    return 2;
  }
  try {
    if (args.command == "worker") return cmd_worker(args);
    if (args.command == "init") return cmd_init(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "matrix") return cmd_matrix(args);
    if (args.command == "port") return cmd_port(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "release") return cmd_release(args);
    if (args.command == "random") return cmd_random(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
