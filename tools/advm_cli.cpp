// advm — command-line driver for the ADVM toolchain.
//
// The workflow a verification team would actually run, against environments
// that live on disk (paper §3 keeps them under revision control):
//
//   advm init  <dir> [--derivative SC88-A] [--tests N] [--backend B]
//                    [--shards N] [--jobs N]             create a system env
//   advm run   <dir> [--derivative D] [--platform P] [--jobs N]
//                    [--backend B] [--cache-dir DIR]     build + regress
//   advm matrix <dir> --derivatives A,B,C --platforms P,Q [--jobs N]
//                    [--backend thread|process] [--shards N]
//                    [--cache-dir DIR]                   derivative × platform
//                                                        cube, one report per
//                                                        cell + roll-up
//   advm port  <dir> --to SC88-C                         retarget in place
//   advm check <dir> [--derivative D]                    violation report
//   advm lint  <dir> [--derivative D] [--jobs N]         binary-level dataflow
//                                                        analysis of every
//                                                        linked test cell
//                                                        (--lint on run/matrix
//                                                        gates execution on a
//                                                        clean lint)
//   advm release <dir> --name R1 [--derivative D] [--platform P] [--jobs N]
//                                                        frozen snapshot +
//                                                        verify + regression
//   advm random <dir> --seed K [--derivative D]          random Globals.inc
//   advm serve --socket <path> [--idle-timeout-ms MS]    resident daemon: one
//                                                        warm Session behind a
//                                                        unix socket; --stats /
//                                                        --stop control a live
//                                                        one
//   advm worker --slice <file>                           execute one work-plan
//                                                        slice (one-shot; used
//                                                        by sharded init)
//   advm worker --serve                                  persistent worker:
//                                                        line-delimited JSON
//                                                        requests on stdin
//                                                        (spawned as a pool by
//                                                        the process backend)
//
// Every verb is the same thin adapter: parse arguments into a typed
// request, run it on one advm::Session (which owns the VFS, object cache,
// board pool and worker-pool policy), render the typed result. `--format
// json` (any verb) renders the result as the stable machine-readable
// document from src/advm/report.h instead of the human text.
//
// `--backend process` shards matrix cells (or corpus environments, for
// init) across `advm worker` subprocesses — this very binary, re-entered
// through the worker verb. `--cache-dir` points the content-addressed
// object cache at a persistent directory that workers and consecutive
// invocations share. `--attach <socket>` (or ADVM_SOCKET) ships any verb
// to a resident `advm serve` daemon instead — same flags, same documents,
// same exit codes, but a warm shared Session on the far side.
//
// Environments are imported from disk into the session's VFS, transformed,
// and written back — so `port` literally edits only the abstraction layer
// files in your working copy.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advm/exec/backend.h"
#include "advm/exec/workerpool.h"
#include "advm/exec/workplan.h"
#include "advm/report.h"
#include "advm/serve/client.h"
#include "advm/serve/daemon.h"
#include "advm/serve/frame.h"
#include "advm/serve/service.h"
#include "advm/session.h"
#include "support/disk.h"
#include "support/text.h"

namespace {

using namespace advm;
using namespace advm::core;

constexpr const char* kVfsRoot = "/SYS";

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> options;
  bool json = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value = i + 1 < argc ? argv[i + 1] : "";
      if (!value.empty() && value.rfind("--", 0) != 0) {
        args.options.insert_or_assign(key, std::move(value));
        ++i;
      } else {
        // insert_or_assign with a sized string: `options[key] = "1"` hits
        // GCC 12's -Wrestrict false positive (PR105651) under -O3 -Werror.
        args.options.insert_or_assign(key, std::string(1, '1'));
      }
    } else if (positional++ == 0) {
      args.dir = arg;
    }
  }
  auto format = args.options.find("format");
  args.json = format != args.options.end() && format->second == "json";
  return args;
}

/// Parses a numeric option strictly: digits only. strtoul would silently
/// accept "-1" (wrapping to ULONG_MAX — i.e. maximum fan-out, the exact
/// accident to prevent), so negative and non-numeric values come back as a
/// typed Status instead. Range validation (0 shards, absurd jobs) is the
/// Session's job — numeric values pass through so the typed error has one
/// home.
Status parse_count(const Args& args, const char* key, const char* code,
                   std::size_t* out) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return {};
  const std::string& value = it->second;
  const bool all_digits =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  // 20 digits cannot fit in 64 bits: reject before strtoul saturates.
  if (!all_digits || value.size() > 19) {
    return Status::error(std::string(code),
                         std::string("invalid --") + key + " value '" +
                             value + "' (expected a non-negative number)");
  }
  *out = std::strtoul(value.c_str(), nullptr, 10);
  return {};
}

std::string option_or(const Args& args, const char* key,
                      const char* fallback) {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

/// SessionConfig from the shared execution flags (--jobs, --shards,
/// --backend, --cache-dir). Typed Status on malformed values.
Status config_from_args(const Args& args, SessionConfig* config) {
  if (Status status = parse_count(args, "jobs", "advm.bad-jobs",
                                  &config->jobs);
      !status.ok()) {
    return status;
  }
  if (Status status = parse_count(args, "shards", "advm.bad-shards",
                                  &config->shards);
      !status.ok()) {
    return status;
  }
  const std::string backend = option_or(args, "backend", "thread");
  if (backend == "process") {
    config->backend = ExecBackendKind::Process;
  } else if (backend != "thread") {
    return Status::error("advm.bad-backend",
                         "invalid --backend value '" + backend +
                             "' (expected thread or process)");
  }
  config->cache_dir = option_or(args, "cache-dir", "");
  // --batch-threshold MS|auto|0: tiny-cell batching on the process
  // backend. "auto" (the default) lets the backend pick; 0 disables.
  const std::string batch = option_or(args, "batch-threshold", "auto");
  if (batch != "auto") {
    if (Status status =
            parse_count(args, "batch-threshold",
                        "advm.bad-batch-threshold",
                        &config->batch_threshold_ms);
        !status.ok()) {
      return status;
    }
  }
  // --request-timeout-ms MS: per-request worker deadline on the process
  // backend (0 = wait forever). Range-checked by SessionConfig::validate.
  if (Status status = parse_count(args, "request-timeout-ms",
                                  "advm.bad-timeout",
                                  &config->request_timeout_ms);
      !status.ok()) {
    return status;
  }
  if (Status status = parse_count(args, "max-respawns",
                                  "advm.bad-respawns",
                                  &config->max_respawns);
      !status.ok()) {
    return status;
  }
  // Hidden fault-injection seam (tests, the ci.sh chaos gate): the flag
  // wins over the environment so a wrapper script can still override.
  config->fault_plan = option_or(args, "fault-plan", "");
  if (config->fault_plan.empty()) {
    if (const char* env = std::getenv("ADVM_FAULT_PLAN")) {
      config->fault_plan = env;
    }
  }
  return {};
}

/// Renders a pre-request failure (bad flag value) through the same
/// contract request validation uses: JSON error document on stdout in
/// --format json mode, bare message on stderr otherwise, exit code 2.
int render_status(const Args& args, const char* verb, const Status& status) {
  if (args.json) {
    std::cout << error_to_json(verb, status) << "\n";
  } else {
    std::cerr << status.message << "\n";
  }
  return 2;
}

/// Builds a Session from the shared execution flags, with the tree at
/// `args.dir` imported under kVfsRoot. Null after a diagnostic on a bad
/// flag value. An unreadable disk tree is *not* fatal here: the failure is
/// stashed in `import_error` so that request validation (unknown
/// derivative/platform) still gets to report first — the session then
/// fails root validation and the verb substitutes the disk-level message.
std::unique_ptr<Session> make_session(const Args& args, const char* verb,
                                      std::string* import_error,
                                      bool import = true) {
  SessionConfig config;
  if (Status status = config_from_args(args, &config); !status.ok()) {
    render_status(args, verb, status);
    return nullptr;
  }
  auto session = std::make_unique<Session>(std::move(config));
  if (import) {
    try {
      support::import_from_disk(session->vfs(), args.dir, kVfsRoot);
    } catch (const std::exception& e) {
      if (import_error) *import_error = e.what();
    }
  }
  return session;
}

/// Builds the verb's typed request from its flags — the one place CLI
/// flag names map onto serve::VerbRequest fields, shared verbatim by the
/// local and attached paths (parity by construction: both feed the same
/// request to serve::execute_verb, one directly and one over the socket).
serve::VerbRequest build_verb_request(const Args& args,
                                      const std::string& verb) {
  serve::VerbRequest request;
  request.verb = verb;
  request.dir = args.dir;
  if (verb == "init") {
    request.build.derivative = option_or(args, "derivative", "SC88-A");
    request.build.tests_per_module =
        args.options.count("tests")
            ? std::strtoul(args.options.at("tests").c_str(), nullptr, 10)
            : 5;
  } else if (verb == "run") {
    request.run.derivative = option_or(args, "derivative", "SC88-A");
    request.run.platform = option_or(args, "platform", "golden-model");
    request.lint_gate = args.options.count("lint") != 0;
  } else if (verb == "matrix") {
    const std::string derivatives = option_or(args, "derivatives", "SC88-A");
    const std::string platforms = option_or(args, "platforms", "golden-model");
    request.matrix.derivatives.clear();
    for (std::string_view name : support::split(derivatives, ',')) {
      request.matrix.derivatives.emplace_back(name);
    }
    request.matrix.platforms.clear();
    for (std::string_view name : support::split(platforms, ',')) {
      request.matrix.platforms.emplace_back(name);
    }
    request.lint_gate = args.options.count("lint") != 0;
  } else if (verb == "port") {
    request.port.to = option_or(args, "to", "");
  } else if (verb == "check") {
    request.check.derivative = option_or(args, "derivative", "SC88-A");
  } else if (verb == "lint") {
    request.lint.derivative = option_or(args, "derivative", "SC88-A");
  } else if (verb == "release") {
    request.release.name = option_or(args, "name", "R1");
    request.release.derivative = option_or(args, "derivative", "SC88-A");
    request.release.platform = option_or(args, "platform", "golden-model");
  } else if (verb == "random") {
    request.random.derivative = option_or(args, "derivative", "SC88-A");
    request.random.seed =
        args.options.count("seed")
            ? std::strtoull(args.options.at("seed").c_str(), nullptr, 10)
            : 1;
  }
  return request;
}

/// The shared output contract: JSON document on stdout in --format json
/// mode; otherwise the human text — on stderr when the verb failed
/// before running (exit 2, bare diagnostic), on stdout when it ran.
int print_outcome(const Args& args, int exit_code, const std::string& json,
                  const std::string& text) {
  if (args.json) {
    std::cout << json << "\n";
  } else if (exit_code == 2) {
    std::cerr << text;
  } else {
    std::cout << text;
  }
  return exit_code;
}

/// The socket a verb should attach to: --attach <socket> wins, then the
/// ADVM_SOCKET environment. Empty = run locally in this process.
std::string attach_socket(const Args& args) {
  auto it = args.options.find("attach");
  if (it != args.options.end()) return it->second;
  if (const char* env = std::getenv("ADVM_SOCKET")) return env;
  return "";
}

/// Runs a verb against the resident daemon: marshal the typed request
/// over the socket, print the returned documents exactly as a local run
/// would (the payload IS the local JSON, byte for byte), exit with the
/// daemon-computed code.
int run_attached(const Args& args, const std::string& socket,
                 serve::VerbRequest request) {
  // The daemon's working directory is not the client's: ship an absolute,
  // normalized path so both sides (and the daemon's per-dir VFS roots)
  // agree on which tree this is.
  std::error_code ec;
  const std::filesystem::path absolute =
      std::filesystem::absolute(request.dir, ec);
  if (!ec) request.dir = absolute.lexically_normal().string();

  serve::Frame frame;
  frame.id = 1;
  frame.verb = request.verb;
  frame.payload = serve::to_json(request);
  serve::AttachOptions options;
  options.socket_path = socket;
  serve::Frame response;
  if (Status status = serve::attach_roundtrip(options, frame, &response);
      !status.ok()) {
    return render_status(args, request.verb.c_str(), status);
  }
  return print_outcome(args, response.exit, response.payload, response.text);
}

/// Every verb, one adapter: build the typed request from flags, then
/// either ship it to the daemon (--attach / ADVM_SOCKET) or execute it on
/// a session in this process. Both paths render through print_outcome.
int cmd_verb(const Args& args, const char* verb) {
  serve::VerbRequest request = build_verb_request(args, verb);
  const std::string socket = attach_socket(args);
  if (!socket.empty()) return run_attached(args, socket, std::move(request));

  std::string import_error;
  auto session = make_session(args, verb, &import_error,
                              /*import=*/request.verb != "init");
  if (!session) return 2;
  const serve::VerbOutcome outcome =
      serve::execute_verb(*session, request, kVfsRoot, import_error);
  return print_outcome(args, outcome.exit, outcome.json, outcome.text);
}

/// `advm serve` — the resident daemon (and its control verbs). With
/// --stats or --stop the command is a thin client instead: one control
/// frame to the live daemon, its document printed like any verb.
int cmd_serve(const Args& args) {
  std::string socket = option_or(args, "socket", "");
  if (socket.empty()) {
    if (const char* env = std::getenv("ADVM_SOCKET")) socket = env;
  }
  if (socket.empty()) {
    return render_status(
        args, "serve",
        Status::error("advm.serve-socket-path",
                      "missing --socket <path> (or ADVM_SOCKET)"));
  }

  if (args.options.count("stop") || args.options.count("stats")) {
    serve::Frame frame;
    frame.id = 1;
    frame.verb = args.options.count("stop") ? "shutdown" : "stats";
    frame.payload = "{}";
    serve::AttachOptions options;
    options.socket_path = socket;
    serve::Frame response;
    if (Status status = serve::attach_roundtrip(options, frame, &response);
        !status.ok()) {
      return render_status(args, "serve", status);
    }
    return print_outcome(args, response.exit, response.payload,
                         response.text);
  }

  serve::DaemonConfig config;
  config.socket_path = socket;
  if (Status status = config_from_args(args, &config.session);
      !status.ok()) {
    return render_status(args, "serve", status);
  }
  if (Status status = parse_count(args, "idle-timeout-ms",
                                  "advm.bad-idle-timeout",
                                  &config.idle_timeout_ms);
      !status.ok()) {
    return render_status(args, "serve", status);
  }
  if (Status status = parse_count(args, "serve-threads",
                                  "advm.bad-serve-threads",
                                  &config.executors);
      !status.ok()) {
    return render_status(args, "serve", status);
  }

  serve::Daemon daemon(std::move(config));
  if (Status status = daemon.start(); !status.ok()) {
    return render_status(args, "serve", status);
  }
  // Readiness line on stderr — stdout stays reserved for documents, and
  // wrappers wait on the socket file anyway.
  std::cerr << "advm daemon listening on " << socket << "\n";
  return daemon.serve();
}

/// Runs the planned cells on a resident session and renders the matrix
/// shard document ({"ok":true,"verb":"worker","kind":"matrix","cells":
/// [{"index":N,"micros":U,"report":{...}}]}) — the response shape shared
/// by the one-shot --slice verb and the --serve Run command. `micros` is
/// the cell's measured wall-clock (what the orchestrator's cost model
/// records); an integer so the wire format has no locale/precision
/// pitfalls. nullopt (with the failing Status in `error`) when a cell
/// request fails.
std::optional<std::string> run_cells_document(
    Session& session, const std::vector<exec::PlannedCell>& cells,
    std::uint64_t max_instructions, Status* error) {
  std::ostringstream os;
  os << "{\"ok\":true,\"verb\":\"worker\",\"kind\":\"matrix\",\"cells\":[";
  bool first = true;
  for (const exec::PlannedCell& cell : cells) {
    RunRequest request;
    request.root = kVfsRoot;
    request.derivative = cell.derivative;
    request.platform = cell.platform;
    request.max_instructions = max_instructions;
    const auto started = std::chrono::steady_clock::now();
    RunResult result = session.run(request);
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    if (!result.status.ok()) {
      *error = result.status;
      return std::nullopt;
    }
    if (!first) os << ",";
    first = false;
    os << "{\"index\":" << cell.index << ",\"micros\":" << micros
       << ",\"report\":" << report_to_json(result.report) << "}";
  }
  os << "]}";
  return os.str();
}

/// `advm worker --serve` — the persistent-pool protocol endpoint. Reads
/// line-delimited JSON serve requests (exec::ServeRequest) from stdin and
/// answers each with a single-line JSON document on stdout: an Init
/// constructs the resident Session and imports the exported tree, every
/// Run executes its cells on that same session (warm cache, warm board
/// pool — spawn and import are paid once per worker, not per slice), a
/// Shutdown (or EOF on stdin) exits 0. A malformed request or a failed
/// Run answers with the shared error document; the worker stays resident
/// and lets the orchestrator decide.
int cmd_worker_serve() {
  const auto respond = [](const std::string& line) {
    std::cout << line << "\n" << std::flush;
  };
  std::unique_ptr<Session> session;
  // Injected faults (Init's fault_plan; empty in production). A
  // request-count clause matches exactly one value of `run_count`; a
  // cell clause matches every Run request naming its planned index.
  std::vector<exec::FaultClause> faults;
  std::size_t run_count = 0;
  const auto match_fault =
      [&](const std::vector<exec::PlannedCell>& cells)
      -> const exec::FaultClause* {
    for (const exec::FaultClause& fault : faults) {
      if (fault.cell != exec::FaultClause::kNoCell) {
        for (const exec::PlannedCell& cell : cells) {
          if (cell.index == fault.cell) return &fault;
        }
      } else if (fault.request == run_count) {
        return &fault;
      }
    }
    return nullptr;
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    const auto request = exec::parse_serve_request(line, &parse_error);
    if (!request) {
      respond(error_to_json(
          "worker", Status::error("advm.bad-serve-request", parse_error)));
      continue;
    }
    switch (request->kind) {
      case exec::ServeRequest::Kind::Init: {
        auto parsed = exec::parse_worker_fault_actions(request->fault_plan,
                                                       &parse_error);
        if (!parsed) {
          respond(error_to_json(
              "worker",
              Status::error("advm.bad-serve-request", parse_error)));
          break;
        }
        SessionConfig config;
        config.jobs = request->jobs;
        config.cache_dir = request->cache_dir;
        config.cache_max_bytes = request->cache_max_bytes;
        auto fresh = std::make_unique<Session>(std::move(config));
        try {
          support::import_from_disk(fresh->vfs(), request->tree_dir,
                                    kVfsRoot);
        } catch (const std::exception& e) {
          respond(error_to_json(
              "worker", Status::error("advm.import-failed", e.what())));
          break;
        }
        session = std::move(fresh);
        faults = std::move(*parsed);
        run_count = 0;
        respond("{\"ok\":true,\"verb\":\"worker\",\"kind\":\"serve-init\"}");
        break;
      }
      case exec::ServeRequest::Kind::Run: {
        if (!session) {
          respond(error_to_json(
              "worker", Status::error("advm.bad-serve-request",
                                      "run before init")));
          break;
        }
        run_count += 1;
        if (const exec::FaultClause* fault = match_fault(request->cells)) {
          switch (fault->action) {
            case exec::FaultClause::Action::Crash:
              // Die without a reply — the orchestrator sees EOF
              // mid-request, exactly like a segfaulting simulated test.
              std::raise(SIGKILL);
              break;
            case exec::FaultClause::Action::Exit:
              std::_Exit(3);
              break;
            case exec::FaultClause::Action::Garbage:
              respond("@@fault-injected-garbage@@");
              continue;
            case exec::FaultClause::Action::Wedge:
              // Outlive any sane request deadline; the orchestrator's
              // poll(2) timeout fires and SIGKILLs this process.
              std::this_thread::sleep_for(std::chrono::hours(1));
              break;
          }
        }
        Status error;
        const auto document = run_cells_document(
            *session, request->cells, request->max_instructions, &error);
        if (!document) {
          respond(error_to_json("worker", error));
          break;
        }
        respond(*document);
        break;
      }
      case exec::ServeRequest::Kind::Shutdown:
        respond("{\"ok\":true,\"verb\":\"worker\",\"kind\":\"shutdown\"}");
        return 0;
    }
  }
  return 0;  // EOF on stdin is the orchestrator's shutdown signal.
}

/// `advm worker --slice <file>` (one-shot, kept for the corpus path and
/// back-compat) or `advm worker --serve` (persistent pool endpoint).
/// Output is always a JSON document on stdout
/// ({"ok":true,"verb":"worker",...} or the shared error document), exit
/// code 0 when the slice executed (test failures live inside the
/// reports), 2 when it could not.
int cmd_worker(const Args& args) {
  if (args.options.count("serve")) return cmd_worker_serve();
  const auto slice_option = args.options.find("slice");
  if (slice_option == args.options.end()) {
    std::cout << error_to_json(
                     "worker",
                     Status::error("advm.bad-slice", "missing --slice file"))
              << "\n";
    return 2;
  }
  std::ifstream in(slice_option->second, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    std::cout << error_to_json(
                     "worker",
                     Status::error("advm.bad-slice", "unreadable slice file " +
                                                         slice_option->second))
              << "\n";
    return 2;
  }
  std::string parse_error;
  const auto slice = exec::parse_worker_slice(text.str(), &parse_error);
  if (!slice) {
    std::cout << error_to_json("worker",
                               Status::error("advm.bad-slice", parse_error))
              << "\n";
    return 2;
  }

  SessionConfig config;
  config.jobs = slice->jobs;
  config.cache_dir = slice->cache_dir;
  config.cache_max_bytes = slice->cache_max_bytes;
  Session session(std::move(config));

  if (slice->kind == exec::WorkerSlice::Kind::Matrix) {
    try {
      support::import_from_disk(session.vfs(), slice->tree_dir, kVfsRoot);
    } catch (const std::exception& e) {
      std::cout << error_to_json(
                       "worker", Status::error("advm.import-failed", e.what()))
                << "\n";
      return 2;
    }
    Status error;
    const auto document = run_cells_document(
        session, slice->cells, slice->max_instructions, &error);
    if (!document) {
      std::cout << error_to_json("worker", error) << "\n";
      return 2;
    }
    std::cout << *document << "\n";
    return 0;
  }

  // Corpus slice: generate this shard's environments in the session VFS
  // and export exactly those directories — the orchestrator owns the
  // global layer, and sibling shards own theirs.
  BuildRequest request;
  request.root = kVfsRoot;
  request.derivative = slice->derivative;
  for (const exec::PlannedEnvironment& env : slice->environments) {
    request.environments.push_back(env.config);
  }
  BuildResult built = session.run(request);
  if (!built.status.ok()) {
    std::cout << error_to_json("worker", built.status) << "\n";
    return 2;
  }
  std::size_t files = 0;
  std::ostringstream os;
  os << "{\"ok\":true,\"verb\":\"worker\",\"kind\":\"corpus\","
        "\"environments\":[";
  for (std::size_t i = 0; i < slice->environments.size(); ++i) {
    const std::string& name = slice->environments[i].config.name;
    try {
      files += support::export_to_disk(
          session.vfs(), std::string(kVfsRoot) + "/" + name,
          slice->tree_dir + "/" + name);
    } catch (const std::exception& e) {
      std::cout << error_to_json(
                       "worker", Status::error("advm.export-failed", e.what()))
                << "\n";
      return 2;
    }
    if (i != 0) os << ",";
    os << "\"" << json_escape(name) << "\"";
  }
  os << "],\"files\":" << files << "}";
  std::cout << os.str() << "\n";
  return 0;
}

int usage() {
  std::cerr
      << "advm — assembler-driven verification methodology toolchain\n"
         "usage:\n"
         "  advm init  <dir> [--derivative SC88-A] [--tests N]"
         " [--backend B] [--shards N] [--jobs N]\n"
         "  advm run   <dir> [--derivative D] [--platform P] [--jobs N]"
         " [--backend B] [--cache-dir DIR]\n"
         "  advm matrix <dir> [--derivatives A,B,C] [--platforms P,Q]"
         " [--jobs N]\n"
         "             [--backend thread|process] [--shards N]"
         " [--cache-dir DIR]\n"
         "             [--batch-threshold MS|auto]"
         " [--request-timeout-ms MS] [--max-respawns N]\n"
         "  advm port  <dir> --to <derivative>\n"
         "  advm check <dir> [--derivative D]\n"
         "  advm lint  <dir> [--derivative D] [--jobs N]\n"
         "  advm release <dir> [--name R1] [--derivative D] [--platform P]"
         " [--jobs N]\n"
         "  advm random <dir> --seed K [--derivative D]\n"
         "  advm serve --socket <path> [--backend B] [--shards N]"
         " [--jobs N] [--cache-dir DIR]\n"
         "             [--idle-timeout-ms MS] [--serve-threads N]"
         " | --stats | --stop\n"
         "  advm worker --slice <file> | --serve\n"
         "options: --format json renders any verb's result as JSON;\n"
         "         --attach <socket> (or ADVM_SOCKET) runs any verb on a"
         " resident daemon;\n"
         "         --lint (run/matrix) lints the tree first and refuses"
         " to execute on findings\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  // The worker verb is addressed by --slice, and serve by --socket — no
  // positional directory for either.
  if (args.dir.empty() && args.command != "worker" &&
      args.command != "serve") {
    return usage();
  }
  // Strict like --jobs: a typo'd --format must not silently feed human
  // text to a JSON consumer.
  auto format = args.options.find("format");
  if (format != args.options.end() && format->second != "json" &&
      format->second != "text") {
    std::cerr << "invalid --format value '" << format->second
              << "' (expected json or text)\n";
    return 2;
  }
  try {
    if (args.command == "worker") return cmd_worker(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "init" || args.command == "run" ||
        args.command == "matrix" || args.command == "port" ||
        args.command == "check" || args.command == "lint" ||
        args.command == "release" || args.command == "random") {
      return cmd_verb(args, args.command.c_str());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
