// advm — command-line driver for the ADVM toolchain.
//
// The workflow a verification team would actually run, against environments
// that live on disk (paper §3 keeps them under revision control):
//
//   advm init  <dir> [--derivative SC88-A] [--tests N]   create a system env
//   advm run   <dir> [--derivative D] [--platform P] [--jobs N]
//                                                        build + regress
//   advm matrix <dir> --derivatives A,B,C --platforms P,Q [--jobs N]
//                                                        derivative × platform
//                                                        cube, one report per
//                                                        cell + roll-up
//   advm port  <dir> --to SC88-C                         retarget in place
//   advm check <dir> [--derivative D]                    violation report
//   advm release <dir> --name R1 [--derivative D] [--platform P] [--jobs N]
//                                                        frozen snapshot +
//                                                        verify + regression
//   advm random <dir> --seed K [--derivative D]          random Globals.inc
//
// Every verb is the same thin adapter: parse arguments into a typed
// request, run it on one advm::Session (which owns the VFS, object cache,
// board pool and worker-pool policy), render the typed result. `--format
// json` (any verb) renders the result as the stable machine-readable
// document from src/advm/report.h instead of the human text.
//
// Environments are imported from disk into the session's VFS, transformed,
// and written back — so `port` literally edits only the abstraction layer
// files in your working copy.
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "advm/report.h"
#include "advm/session.h"
#include "support/disk.h"
#include "support/hash.h"
#include "support/text.h"

namespace {

using namespace advm;
using namespace advm::core;

constexpr const char* kVfsRoot = "/SYS";

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> options;
  bool json = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value = i + 1 < argc ? argv[i + 1] : "";
      if (!value.empty() && value.rfind("--", 0) != 0) {
        args.options.insert_or_assign(key, std::move(value));
        ++i;
      } else {
        // insert_or_assign with a sized string: `options[key] = "1"` hits
        // GCC 12's -Wrestrict false positive (PR105651) under -O3 -Werror.
        args.options.insert_or_assign(key, std::string(1, '1'));
      }
    } else if (positional++ == 0) {
      args.dir = arg;
    }
  }
  auto format = args.options.find("format");
  args.json = format != args.options.end() && format->second == "json";
  return args;
}

/// Parses --jobs strictly: digits only, 0 = one worker per hardware
/// thread. nullopt (after a diagnostic) on anything else — a typo must not
/// silently fan out across every core.
std::optional<std::size_t> jobs_from(const Args& args) {
  auto it = args.options.find("jobs");
  if (it == args.options.end()) return 1;
  const std::string& value = it->second;
  // Digits only, checked by hand: strtoul silently accepts "-1" (wrapping
  // to ULONG_MAX — i.e. maximum fan-out, the exact accident to prevent).
  const bool all_digits =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long parsed =
      all_digits ? std::strtoul(value.c_str(), nullptr, 10) : 0;
  // The cap also catches strtoul's silent ERANGE saturation to ULONG_MAX.
  if (!all_digits || parsed > 1'000'000) {
    std::cerr << "invalid --jobs value '" << value
              << "' (expected a number; 0 = all hardware threads)\n";
    return std::nullopt;
  }
  return parsed;
}

std::string option_or(const Args& args, const char* key,
                      const char* fallback) {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

/// Builds a Session sized by --jobs, with the tree at `args.dir` imported
/// under kVfsRoot. Null after a diagnostic on a bad --jobs. An unreadable
/// disk tree is *not* fatal here: the failure is stashed in `import_error`
/// so that request validation (unknown derivative/platform) still gets to
/// report first — the session then fails root validation and the verb
/// substitutes the disk-level message.
std::unique_ptr<Session> make_session(const Args& args,
                                      std::string* import_error,
                                      bool import = true) {
  const std::optional<std::size_t> jobs = jobs_from(args);
  if (!jobs) return nullptr;
  SessionConfig config;
  config.jobs = *jobs;
  auto session = std::make_unique<Session>(std::move(config));
  if (import) {
    try {
      support::import_from_disk(session->vfs(), args.dir, kVfsRoot);
    } catch (const std::exception& e) {
      if (import_error) *import_error = e.what();
    }
  }
  return session;
}

/// Error rendering shared by every verb: the JSON document on stdout in
/// --format json mode, the bare message on stderr otherwise. Always exit
/// code 2 (a request that failed validation never ran). A root-validation
/// failure caused by an unreadable disk tree reports the disk error.
template <typename Result>
int render_error(const Args& args, Result result,
                 const std::string& import_error = {}) {
  if (!import_error.empty() && result.status.code == "advm.bad-root") {
    result.status = Status::error("advm.import-failed", import_error);
  }
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cerr << result.status.message << "\n";
  }
  return 2;
}

int cmd_init(const Args& args) {
  auto session = make_session(args, nullptr, /*import=*/false);
  if (!session) return 2;

  BuildRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.tests_per_module =
      args.options.count("tests")
          ? std::strtoul(args.options.at("tests").c_str(), nullptr, 10)
          : 5;

  BuildResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result);

  const std::size_t written =
      support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "created " << args.dir << " for " << result.derivative
              << ": " << written << " files, " << result.tests << " tests\n";
  }
  return 0;
}

int cmd_run(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  RunRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.platform = option_or(args, "platform", "golden-model");

  RunResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << format_report(result.report);
  }
  return result.report.all_passed() ? 0 : 1;
}

int cmd_matrix(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  MatrixRequest request;
  request.root = kVfsRoot;
  const std::string derivatives = option_or(args, "derivatives", "SC88-A");
  const std::string platforms = option_or(args, "platforms", "golden-model");
  request.derivatives.clear();
  for (std::string_view name : support::split(derivatives, ',')) {
    request.derivatives.emplace_back(name);
  }
  request.platforms.clear();
  for (std::string_view name : support::split(platforms, ',')) {
    request.platforms.emplace_back(name);
  }

  MatrixResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    for (const auto& cell : result.cells) {
      std::cout << format_report(cell) << "\n";
    }
    std::cout << format_matrix_rollup(result);
  }
  return result.all_passed() ? 0 : 1;
}

int cmd_port(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  PortRequest request;
  request.root = kVfsRoot;
  request.to = option_or(args, "to", "");

  PortResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "ported " << args.dir << " to " << result.target << "\n"
              << "  global layer: "
              << result.repair.global_layer.files_touched() << " files\n"
              << "  abstraction layer: "
              << result.repair.abstraction_layer.files_touched() << " files, "
              << result.repair.abstraction_layer.lines().total() << " lines\n"
              << "  test layer: " << result.repair.test_layer.files_touched()
              << " files (ADVM environments: expected 0)\n";
  }
  return 0;
}

int cmd_check(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  CheckRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");

  CheckResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else if (result.report.clean()) {
    std::cout << "clean: no abstraction violations\n";
  } else {
    for (const auto& v : result.report.violations) {
      std::cout << v.file;
      if (v.loc.valid()) std::cout << ":" << v.loc.line;
      std::cout << ": [" << v.code << "] " << v.detail << "\n";
    }
    std::cout << result.report.violations.size() << " violation(s)\n";
  }
  return result.report.clean() ? 0 : 1;
}

int cmd_release(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  ReleaseRequest request;
  request.root = kVfsRoot;
  request.name = option_or(args, "name", "R1");
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.platform = option_or(args, "platform", "golden-model");

  ReleaseResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  // Persist the frozen snapshot next to the live tree (outside it, so
  // discovery and future releases never pick it up as an environment). A
  // later invocation can re-verify or re-regress it with plain `advm run`.
  const std::string snapshot_dir =
      args.dir + ".releases/" + result.release.name;
  support::export_to_disk(session->vfs(), result.release.root, snapshot_dir);

  const bool frozen_green = result.frozen && result.frozen->all_passed();
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    if (result.frozen) std::cout << format_report(*result.frozen);
    std::cout << "release " << result.release.name << ": "
              << result.release.sub_labels.size() << " sub-labels, composed "
              << support::hash_to_string(result.release.composed_hash)
              << (result.verified ? " (verified)" : " (TAMPERED)")
              << ", snapshot " << snapshot_dir << "\n";
  }
  return result.verified && frozen_green ? 0 : 1;
}

int cmd_random(const Args& args) {
  std::string import_error;
  auto session = make_session(args, &import_error);
  if (!session) return 2;

  RandomRequest request;
  request.root = kVfsRoot;
  request.derivative = option_or(args, "derivative", "SC88-A");
  request.seed =
      args.options.count("seed")
          ? std::strtoull(args.options.at("seed").c_str(), nullptr, 10)
          : 1;

  RandomResult result = session->run(request);
  if (!result.status.ok()) return render_error(args, result, import_error);

  support::export_to_disk(session->vfs(), kVfsRoot, args.dir);
  if (args.json) {
    std::cout << to_json(result) << "\n";
  } else {
    std::cout << "seed " << result.seed << ": regenerated "
              << result.regenerated
              << " Globals.inc instance(s); TEST1_TARGET_PAGE="
              << result.values.at(GlobalDefineNames::kTest1TargetPage)
              << " TEST2_TARGET_PAGE="
              << result.values.at(GlobalDefineNames::kTest2TargetPage)
              << "\n";
  }
  return 0;
}

int usage() {
  std::cerr
      << "advm — assembler-driven verification methodology toolchain\n"
         "usage:\n"
         "  advm init  <dir> [--derivative SC88-A] [--tests N]\n"
         "  advm run   <dir> [--derivative D] [--platform P] [--jobs N]\n"
         "  advm matrix <dir> [--derivatives A,B,C] [--platforms P,Q]"
         " [--jobs N]\n"
         "  advm port  <dir> --to <derivative>\n"
         "  advm check <dir> [--derivative D]\n"
         "  advm release <dir> [--name R1] [--derivative D] [--platform P]"
         " [--jobs N]\n"
         "  advm random <dir> --seed K [--derivative D]\n"
         "options: --format json renders any verb's result as JSON\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  if (args.dir.empty()) return usage();
  // Strict like --jobs: a typo'd --format must not silently feed human
  // text to a JSON consumer.
  auto format = args.options.find("format");
  if (format != args.options.end() && format->second != "json" &&
      format->second != "text") {
    std::cerr << "invalid --format value '" << format->second
              << "' (expected json or text)\n";
    return 2;
  }
  try {
    if (args.command == "init") return cmd_init(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "matrix") return cmd_matrix(args);
    if (args.command == "port") return cmd_port(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "release") return cmd_release(args);
    if (args.command == "random") return cmd_random(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
