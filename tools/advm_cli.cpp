// advm — command-line driver for the ADVM toolchain.
//
// The workflow a verification team would actually run, against environments
// that live on disk (paper §3 keeps them under revision control):
//
//   advm init  <dir> [--derivative SC88-A] [--tests N]   create a system env
//   advm run   <dir> [--derivative D] [--platform P] [--jobs N]
//                                                        build + regress
//   advm matrix <dir> --derivatives A,B,C --platforms P,Q [--jobs N]
//                                                        derivative × platform
//                                                        cube, one report per
//                                                        cell + roll-up
//   advm port  <dir> --to SC88-C                         retarget in place
//   advm check <dir> [--derivative D]                    violation report
//   advm random <dir> --seed K [--derivative D]          random Globals.inc
//
// Environments are imported from disk into the in-memory VFS, transformed,
// and written back — so `port` literally edits only the abstraction layer
// files in your working copy.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "advm/environment.h"
#include "advm/porting.h"
#include "advm/random_globals.h"
#include "advm/regression.h"
#include "advm/violations.h"
#include "soc/derivative.h"
#include "support/disk.h"
#include "support/hash.h"
#include "support/text.h"
#include "support/vfs.h"

namespace {

using namespace advm;
using namespace advm::core;

constexpr const char* kVfsRoot = "/SYS";

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> options;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value = i + 1 < argc ? argv[i + 1] : "";
      if (!value.empty() && value.rfind("--", 0) != 0) {
        args.options.insert_or_assign(key, std::move(value));
        ++i;
      } else {
        // insert_or_assign with a sized string: `options[key] = "1"` hits
        // GCC 12's -Wrestrict false positive (PR105651) under -O3 -Werror.
        args.options.insert_or_assign(key, std::string(1, '1'));
      }
    } else if (positional++ == 0) {
      args.dir = arg;
    }
  }
  return args;
}

const soc::DerivativeSpec* derivative_from(const Args& args,
                                           const char* key = "derivative") {
  auto it = args.options.find(key);
  const std::string name = it == args.options.end() ? "SC88-A" : it->second;
  const soc::DerivativeSpec* spec = soc::find_derivative(name);
  if (spec == nullptr) {
    std::cerr << "unknown derivative '" << name << "'; known:";
    for (const auto* d : soc::all_derivatives()) std::cerr << " " << d->name;
    std::cerr << "\n";
  }
  return spec;
}

/// Parses --jobs strictly: digits only, 0 = one worker per hardware
/// thread. nullopt (after a diagnostic) on anything else — a typo must not
/// silently fan out across every core.
std::optional<std::size_t> jobs_from(const Args& args) {
  auto it = args.options.find("jobs");
  if (it == args.options.end()) return 1;
  const std::string& value = it->second;
  // Digits only, checked by hand: strtoul silently accepts "-1" (wrapping
  // to ULONG_MAX — i.e. maximum fan-out, the exact accident to prevent).
  const bool all_digits =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long parsed =
      all_digits ? std::strtoul(value.c_str(), nullptr, 10) : 0;
  // The cap also catches strtoul's silent ERANGE saturation to ULONG_MAX.
  if (!all_digits || parsed > 1'000'000) {
    std::cerr << "invalid --jobs value '" << value
              << "' (expected a number; 0 = all hardware threads)\n";
    return std::nullopt;
  }
  return parsed;
}

sim::PlatformKind platform_from(const Args& args) {
  auto it = args.options.find("platform");
  if (it == args.options.end()) return sim::PlatformKind::GoldenModel;
  for (sim::PlatformKind kind : sim::kAllPlatforms) {
    if (sim::to_string(kind) == it->second) return kind;
  }
  std::cerr << "unknown platform '" << it->second
            << "', using golden-model; known:";
  for (sim::PlatformKind kind : sim::kAllPlatforms) {
    std::cerr << " " << sim::to_string(kind);
  }
  std::cerr << "\n";
  return sim::PlatformKind::GoldenModel;
}

int cmd_init(const Args& args) {
  const soc::DerivativeSpec* spec = derivative_from(args);
  if (!spec) return 2;
  const std::size_t tests =
      args.options.count("tests")
          ? std::strtoul(args.options.at("tests").c_str(), nullptr, 10)
          : 5;

  support::VirtualFileSystem vfs;
  SystemConfig config;
  config.environments = {
      {"PAGE_MODULE", ModuleKind::Register, tests, true},
      {"UART_MODULE", ModuleKind::Uart, tests, true},
      {"NVM_MODULE", ModuleKind::Nvm, tests, true},
      {"TIMER_MODULE", ModuleKind::Timer, tests, true},
      {"MEM_MODULE", ModuleKind::Memory, tests, true},
  };
  (void)build_system(vfs, config, *spec);
  // build_system writes under config.root; re-home it below kVfsRoot.
  const std::size_t written = support::export_to_disk(
      vfs, "/ADVM_System_Verification_Environment", args.dir);
  std::cout << "created " << args.dir << " for " << spec->name << ": "
            << written << " files, " << 5 * tests << " tests\n";
  return 0;
}

int cmd_run(const Args& args) {
  const soc::DerivativeSpec* spec = derivative_from(args);
  if (!spec) return 2;
  const std::optional<std::size_t> jobs = jobs_from(args);
  if (!jobs) return 2;
  support::VirtualFileSystem vfs;
  support::import_from_disk(vfs, args.dir, kVfsRoot);
  RegressionRunner runner(vfs, *jobs);
  auto report = runner.run_system(kVfsRoot, *spec, platform_from(args));
  std::cout << format_report(report);
  return report.all_passed() ? 0 : 1;
}

/// Parses `--derivatives A,B,C` (default: SC88-A). Empty list after a
/// diagnostic on any unknown name.
std::vector<const soc::DerivativeSpec*> derivatives_from(const Args& args) {
  auto it = args.options.find("derivatives");
  const std::string list = it == args.options.end() ? "SC88-A" : it->second;
  std::vector<const soc::DerivativeSpec*> specs;
  for (std::string_view name : support::split(list, ',')) {
    const soc::DerivativeSpec* spec =
        soc::find_derivative(std::string(name));
    if (spec == nullptr) {
      std::cerr << "unknown derivative '" << name << "'; known:";
      for (const auto* d : soc::all_derivatives()) std::cerr << " " << d->name;
      std::cerr << "\n";
      return {};
    }
    specs.push_back(spec);
  }
  return specs;
}

/// Parses `--platforms golden-model,rtl-sim` (default: golden-model).
/// Empty list after a diagnostic on any unknown name.
std::vector<sim::PlatformKind> platforms_from(const Args& args) {
  auto it = args.options.find("platforms");
  const std::string list =
      it == args.options.end() ? "golden-model" : it->second;
  std::vector<sim::PlatformKind> platforms;
  for (std::string_view name : support::split(list, ',')) {
    bool found = false;
    for (sim::PlatformKind kind : sim::kAllPlatforms) {
      if (sim::to_string(kind) == name) {
        platforms.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "unknown platform '" << name << "'; known:";
      for (sim::PlatformKind kind : sim::kAllPlatforms) {
        std::cerr << " " << sim::to_string(kind);
      }
      std::cerr << "\n";
      return {};
    }
  }
  return platforms;
}

int cmd_matrix(const Args& args) {
  const std::vector<const soc::DerivativeSpec*> derivatives =
      derivatives_from(args);
  if (derivatives.empty()) return 2;
  const std::vector<sim::PlatformKind> platforms = platforms_from(args);
  if (platforms.empty()) return 2;
  const std::optional<std::size_t> jobs = jobs_from(args);
  if (!jobs) return 2;

  support::VirtualFileSystem vfs;
  support::import_from_disk(vfs, args.dir, kVfsRoot);

  std::vector<MatrixCell> cells;
  for (const soc::DerivativeSpec* spec : derivatives) {
    for (sim::PlatformKind platform : platforms) {
      cells.push_back({spec, platform});
    }
  }

  // One runner for the whole cube: every test assembles once, every cell
  // links against the cached objects.
  RegressionRunner runner(vfs, *jobs);
  auto reports = runner.run_matrix(kVfsRoot, cells);

  for (const auto& report : reports) {
    std::cout << format_report(report) << "\n";
  }

  std::size_t col = 10;  // widths: longest derivative / platform name
  for (const auto* spec : derivatives) col = std::max(col, spec->name.size());
  std::size_t pcol = 8;
  for (sim::PlatformKind p : platforms) {
    pcol = std::max(pcol, std::string(sim::to_string(p)).size());
  }

  bool all_green = true;
  std::cout << "matrix roll-up (" << derivatives.size() << " derivatives x "
            << platforms.size() << " platforms):\n";
  std::cout << "  " << std::left << std::setw(static_cast<int>(col) + 2)
            << "derivative" << std::setw(static_cast<int>(pcol) + 2)
            << "platform" << std::setw(10) << "passed" << std::setw(12)
            << "build-fail" << "outcome digest\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& report = reports[i];
    all_green = all_green && report.all_passed();
    std::cout << "  " << std::left << std::setw(static_cast<int>(col) + 2)
              << report.derivative << std::setw(static_cast<int>(pcol) + 2)
              << sim::to_string(report.platform) << std::setw(10)
              << (std::to_string(report.passed()) + "/" +
                  std::to_string(report.records.size()))
              << std::setw(12) << report.build_failures()
              << support::hash_to_string(report.outcome_digest()) << "\n";
  }
  return all_green ? 0 : 1;
}

int cmd_port(const Args& args) {
  const soc::DerivativeSpec* target = derivative_from(args, "to");
  if (!target) return 2;
  support::VirtualFileSystem vfs;
  support::import_from_disk(vfs, args.dir, kVfsRoot);

  // Reconstruct the layout from the on-disk tree.
  SystemLayout layout;
  layout.root = kVfsRoot;
  layout.global_dir = std::string(kVfsRoot) + "/" + kGlobalLibrariesDir;
  for (const std::string& entry : vfs.list_dir(kVfsRoot)) {
    if (entry.empty() || entry.back() != '/') continue;
    const std::string name = entry.substr(0, entry.size() - 1);
    if (name == kGlobalLibrariesDir) continue;
    EnvironmentLayout env;
    env.name = name;
    env.dir = std::string(kVfsRoot) + "/" + name;
    env.abstraction_dir = env.dir + "/" + kAbstractionLayerDir;
    env.advm_style = vfs.dir_exists(env.abstraction_dir);
    layout.environments.push_back(std::move(env));
  }

  PortingEngine porter(vfs);
  auto repair = porter.port(layout, *target, {}, {});
  support::export_to_disk(vfs, kVfsRoot, args.dir);

  std::cout << "ported " << args.dir << " to " << target->name << "\n"
            << "  global layer: " << repair.global_layer.files_touched()
            << " files\n"
            << "  abstraction layer: "
            << repair.abstraction_layer.files_touched() << " files, "
            << repair.abstraction_layer.lines().total() << " lines\n"
            << "  test layer: " << repair.test_layer.files_touched()
            << " files (ADVM environments: expected 0)\n";
  return 0;
}

int cmd_check(const Args& args) {
  const soc::DerivativeSpec* spec = derivative_from(args);
  if (!spec) return 2;
  support::VirtualFileSystem vfs;
  support::import_from_disk(vfs, args.dir, kVfsRoot);
  ViolationChecker checker(vfs);
  auto report = checker.check_system(kVfsRoot, *spec);
  if (report.clean()) {
    std::cout << "clean: no abstraction violations\n";
    return 0;
  }
  for (const auto& v : report.violations) {
    std::cout << v.file;
    if (v.loc.valid()) std::cout << ":" << v.loc.line;
    std::cout << ": [" << v.code << "] " << v.detail << "\n";
  }
  std::cout << report.violations.size() << " violation(s)\n";
  return 1;
}

int cmd_random(const Args& args) {
  const soc::DerivativeSpec* spec = derivative_from(args);
  if (!spec) return 2;
  const std::uint64_t seed =
      args.options.count("seed")
          ? std::strtoull(args.options.at("seed").c_str(), nullptr, 10)
          : 1;

  support::VirtualFileSystem vfs;
  support::import_from_disk(vfs, args.dir, kVfsRoot);

  auto values = randomize_defines(default_constraints(*spec), seed);
  GlobalsOptions options;
  options.overrides = values;
  std::size_t regenerated = 0;
  for (const std::string& entry : vfs.list_dir(kVfsRoot)) {
    if (entry.empty() || entry.back() != '/') continue;
    const std::string abstraction = std::string(kVfsRoot) + "/" +
                                    entry.substr(0, entry.size() - 1) + "/" +
                                    kAbstractionLayerDir;
    if (!vfs.dir_exists(abstraction)) continue;
    vfs.write(abstraction + "/" + kGlobalsFile,
              generate_globals(*spec, options));
    ++regenerated;
  }
  support::export_to_disk(vfs, kVfsRoot, args.dir);
  std::cout << "seed " << seed << ": regenerated " << regenerated
            << " Globals.inc instance(s); TEST1_TARGET_PAGE="
            << values.at(GlobalDefineNames::kTest1TargetPage)
            << " TEST2_TARGET_PAGE="
            << values.at(GlobalDefineNames::kTest2TargetPage) << "\n";
  return 0;
}

int usage() {
  std::cerr
      << "advm — assembler-driven verification methodology toolchain\n"
         "usage:\n"
         "  advm init  <dir> [--derivative SC88-A] [--tests N]\n"
         "  advm run   <dir> [--derivative D] [--platform P] [--jobs N]\n"
         "  advm matrix <dir> [--derivatives A,B,C] [--platforms P,Q]"
         " [--jobs N]\n"
         "  advm port  <dir> --to <derivative>\n"
         "  advm check <dir> [--derivative D]\n"
         "  advm random <dir> --seed K [--derivative D]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  if (args.dir.empty()) return usage();
  try {
    if (args.command == "init") return cmd_init(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "matrix") return cmd_matrix(args);
    if (args.command == "port") return cmd_port(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "random") return cmd_random(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
