#!/usr/bin/env python3
"""CI trend gate over the BENCH_*.json perf records.

Every bench binary appends JSONL records ({bench, table, headers, rows}) to
BENCH_<name>.json. This script extracts every throughput column it knows
about (assembler lines/s, regression tests/s, simulator instr/s), compares
the values against the previous invocation's record in a history file, and
fails (exit 1) when any metric dropped by more than --max-drop percent.
The current values are appended to the history either way, so the next CI
lap diffs against this one — consecutive records, as the ROADMAP asks.

Stdlib only; no third-party dependencies.

Usage:
    bench_trend.py <bench-json-dir> [--history FILE] [--max-drop PCT]
"""

import argparse
import json
import pathlib
import sys

# Substrings that mark a table column as a throughput metric (higher is
# better). Matched against the header text.
THROUGHPUT_COLUMNS = ("lines/s", "tests/s", "instr/s")


def extract_metrics(json_dir: pathlib.Path) -> dict:
    """Flattens all BENCH_*.json records into {metric-id: value}.

    A metric id is "<bench>/<table>/<row-label>/<column>", so a bench can
    rename tables or rows without silently comparing unrelated numbers.
    """
    metrics = {}
    for path in sorted(json_dir.glob("BENCH_*.json")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(f"bench-trend: skipping malformed line in {path.name}")
                continue
            headers = record.get("headers", [])
            bench = record.get("bench", "?")
            table = record.get("table", "?")

            def record_metric(row_label, column, value):
                try:
                    metrics["/".join((bench, table, row_label, column))] = \
                        float(value)
                except ValueError:
                    pass  # non-numeric cell (a label or "n/a")

            # Form 1: a throughput-named column ("tests/s") with one value
            # per row.
            for col, header in enumerate(headers):
                if not any(t in header for t in THROUGHPUT_COLUMNS):
                    continue
                for row in record.get("rows", []):
                    if row and col < len(row):
                        record_metric(row[0], header, row[col])
            # Form 2: a (metric, value) table where the throughput name is
            # the row label ("assembler lines/s", "1.1e+06").
            for row in record.get("rows", []):
                if len(row) >= 2 and any(t in row[0]
                                         for t in THROUGHPUT_COLUMNS):
                    record_metric(row[0], "value", row[-1])
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_dir", type=pathlib.Path,
                        help="directory holding BENCH_*.json")
    parser.add_argument("--history", type=pathlib.Path, default=None,
                        help="JSONL history file (default: "
                             "<json_dir>/bench-trend-history.jsonl)")
    parser.add_argument("--max-drop", type=float, default=15.0,
                        help="fail on a drop greater than this percent")
    args = parser.parse_args()

    history_path = args.history or args.json_dir / "bench-trend-history.jsonl"
    current = extract_metrics(args.json_dir)
    if not current:
        print(f"bench-trend: no throughput metrics under {args.json_dir}; "
              "nothing to gate")
        return 0

    previous = {}
    if history_path.exists():
        lines = [l for l in history_path.read_text().splitlines() if l.strip()]
        if lines:
            previous = json.loads(lines[-1]).get("metrics", {})
    if not previous:
        # Say so loudly: a missing baseline means the gate compares nothing
        # this lap, and a *persistently* empty history means the records are
        # being written somewhere transient (the bug this message caught).
        print(f"bench-trend: no baseline in {history_path}; "
              "recording first lap")

    regressions = []
    for key, value in sorted(current.items()):
        if key not in previous:
            continue
        base = previous[key]
        if base <= 0:
            continue
        drop = (base - value) / base * 100.0
        marker = ""
        if drop > args.max_drop:
            regressions.append((key, base, value, drop))
            marker = "  <-- REGRESSION"
        print(f"bench-trend: {key}: {base:.4g} -> {value:.4g} "
              f"({-drop:+.1f}%){marker}")

    if regressions:
        # Do NOT record a failing lap: the baseline stays at the last green
        # record, so retrying CI at the same slow revision fails again
        # instead of laundering the regression into the new baseline.
        print(f"bench-trend: FAIL — {len(regressions)} metric(s) dropped "
              f"more than {args.max_drop:.0f}%:")
        for key, base, value, drop in regressions:
            print(f"  {key}: {base:.4g} -> {value:.4g} (-{drop:.1f}%)")
        return 1

    # Green lap: record it as the baseline the next lap diffs against.
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as fh:
        fh.write(json.dumps({"metrics": current}) + "\n")

    compared = sum(1 for k in current if k in previous)
    print(f"bench-trend: OK — {len(current)} metric(s) recorded, "
          f"{compared} compared against previous record")
    return 0


if __name__ == "__main__":
    sys.exit(main())
