#!/usr/bin/env python3
"""Unit checks for tools/bench_trend.py (stdlib only, run via ctest).

The interesting behaviour is around the history file: an empty trajectory
must announce itself ("no baseline" — the silent form of that message is
exactly how the vacuous perf gate went unnoticed), green laps must append
to the history, and regressing laps must fail WITHOUT being recorded so a
rerun at the same revision fails again.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent / "bench_trend.py"


def write_record(json_dir: pathlib.Path, tests_per_s: float) -> None:
    record = {
        "bench": "e10_matrix",
        "table": "throughput",
        "headers": ["case", "tests/s"],
        "rows": [["matrix", str(tests_per_s)]],
    }
    (json_dir / "BENCH_e10_matrix.json").write_text(
        json.dumps(record) + "\n")


def run_trend(json_dir: pathlib.Path, history: pathlib.Path):
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(json_dir),
         "--history", str(history), "--max-drop", "15"],
        capture_output=True, text=True)


def history_lines(history: pathlib.Path):
    if not history.exists():
        return []
    return [l for l in history.read_text().splitlines() if l.strip()]


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="bench-trend-test-")
        self.dir = pathlib.Path(self._tmp.name)
        self.history = self.dir / "history.jsonl"

    def tearDown(self):
        self._tmp.cleanup()

    def test_empty_record_dir_gates_nothing(self):
        proc = run_trend(self.dir, self.history)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("nothing to gate", proc.stdout)
        self.assertEqual(history_lines(self.history), [])

    def test_first_lap_announces_the_missing_baseline_and_records(self):
        write_record(self.dir, 100.0)
        proc = run_trend(self.dir, self.history)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no baseline", proc.stdout)
        self.assertIn("recording first lap", proc.stdout)
        lines = history_lines(self.history)
        self.assertEqual(len(lines), 1)
        metrics = json.loads(lines[0])["metrics"]
        self.assertEqual(len(metrics), 1)
        self.assertEqual(list(metrics.values()), [100.0])

    def test_second_lap_compares_against_the_first(self):
        write_record(self.dir, 100.0)
        run_trend(self.dir, self.history)
        write_record(self.dir, 110.0)
        proc = run_trend(self.dir, self.history)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("no baseline", proc.stdout)
        self.assertIn("1 compared against previous record", proc.stdout)
        self.assertEqual(len(history_lines(self.history)), 2)

    def test_regression_fails_and_is_not_laundered_into_the_baseline(self):
        write_record(self.dir, 100.0)
        run_trend(self.dir, self.history)
        write_record(self.dir, 50.0)  # -50% >> the 15% gate
        proc = run_trend(self.dir, self.history)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        # The failing lap must NOT become the new baseline.
        self.assertEqual(len(history_lines(self.history)), 1)
        retry = run_trend(self.dir, self.history)
        self.assertEqual(retry.returncode, 1, "retry laundered the drop")

    def test_small_dip_within_the_gate_passes(self):
        write_record(self.dir, 100.0)
        run_trend(self.dir, self.history)
        write_record(self.dir, 90.0)  # -10% < 15%
        proc = run_trend(self.dir, self.history)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(len(history_lines(self.history)), 2)


if __name__ == "__main__":
    unittest.main()
