#!/usr/bin/env bash
# CI gate for the ADVM tree.
#
#   1. tier-1: the exact ROADMAP verify command (configure, build, ctest).
#   2. hygiene: a -Werror configure preset must compile warning-clean.
#   3. perf:   build the bench harnesses and record BENCH_*.json so the
#              perf trajectory of every revision is on disk (skippable with
#              ADVM_CI_SKIP_BENCH=1 for quick gates).
#
# Run from anywhere: the script cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1 verify"
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
cd ..

echo "==> JSON report contract (advm matrix --format json)"
rm -rf build/json-contract-env
./build/tools/advm init build/json-contract-env --tests 2 > /dev/null
./build/tools/advm matrix build/json-contract-env \
  --derivatives SC88-A,SC88-B --platforms golden-model \
  --format json > build/json-contract.json
python3 - build/json-contract.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True, doc
assert doc["verb"] == "matrix", doc["verb"]
assert doc["all_passed"] is True, "matrix not green"
assert len(doc["cells"]) == 2, len(doc["cells"])
for cell in doc["cells"]:
    for key in ("derivative", "platform", "records", "passed", "total",
                "build_failures", "all_passed", "outcome_digest", "cache"):
        assert key in cell, "missing key " + key
    assert cell["total"] == len(cell["records"]) > 0
    assert len(cell["outcome_digest"]) == 16
    for key in ("hits", "misses", "bytes", "evictions"):
        assert key in cell["cache"], "missing cache key " + key
print("json contract ok: %d cells, %d records" %
      (len(doc["cells"]), sum(c["total"] for c in doc["cells"])))
PY

echo "==> -Werror hygiene build"
cmake --preset werror
cmake --build build-werror -j

if [[ "${ADVM_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "==> bench harnesses (BENCH_*.json)"
  cmake --build build -t benches -j
  mkdir -p build/bench-json
  export ADVM_BENCH_JSON_DIR="$PWD/build/bench-json"
  # Table-based experiment harnesses; e9 (google-benchmark) reports its own
  # JSON natively when wanted and is too slow for a default CI lap.
  for bench in ablation e1_structure e2_spec_change e3_wrapper e4_platforms \
               e5_devtime e6_porting e7_random e8_labels e10_matrix; do
    "./build/bench/bench_${bench}" > "build/bench-json/bench_${bench}.log"
  done
  echo "bench records: $(ls "$ADVM_BENCH_JSON_DIR"/BENCH_*.json | wc -l) files in build/bench-json/"

  echo "==> perf trend gate (fails on >${ADVM_TREND_MAX_DROP:-15}% throughput drop)"
  # History lives outside bench-json so wiping the record dir does not
  # lose the baseline; consecutive CI laps diff against each other.
  python3 tools/bench_trend.py build/bench-json \
    --history build/bench-trend-history.jsonl \
    --max-drop "${ADVM_TREND_MAX_DROP:-15}"
fi

echo "==> CI green"
