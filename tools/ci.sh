#!/usr/bin/env bash
# CI gate for the ADVM tree.
#
#   1. tier-1: the exact ROADMAP verify command (configure, build, ctest).
#   2. hygiene: a -Werror configure preset must compile warning-clean.
#   3. perf:   build the bench harnesses and record BENCH_*.json so the
#              perf trajectory of every revision is on disk (skippable with
#              ADVM_CI_SKIP_BENCH=1 for quick gates).
#
# Run from anywhere: the script cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1 verify"
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
cd ..

echo "==> JSON report contract (advm matrix --format json)"
rm -rf build/json-contract-env
./build/tools/advm init build/json-contract-env --tests 2 > /dev/null
./build/tools/advm matrix build/json-contract-env \
  --derivatives SC88-A,SC88-B --platforms golden-model \
  --format json > build/json-contract.json
python3 - build/json-contract.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True, doc
assert doc["verb"] == "matrix", doc["verb"]
assert doc["backend"] == "thread", doc["backend"]
assert doc["shards"] == 1, doc["shards"]
assert doc["all_passed"] is True, "matrix not green"
assert len(doc["cells"]) == 2, len(doc["cells"])
assert len(doc["rollup"]) == len(doc["cells"])
for cell in doc["cells"]:
    for key in ("derivative", "platform", "records", "passed", "total",
                "build_failures", "all_passed", "outcome_digest", "cache"):
        assert key in cell, "missing key " + key
    assert cell["total"] == len(cell["records"]) > 0
    assert len(cell["outcome_digest"]) == 16
    for key in ("hits", "misses", "bytes", "evictions", "persistent_hits"):
        assert key in cell["cache"], "missing cache key " + key
for entry in doc["rollup"]:
    for key in ("derivative", "platform", "passed", "total",
                "build_failures", "outcome_digest"):
        assert key in entry, "missing rollup key " + key
print("json contract ok: %d cells, %d records" %
      (len(doc["cells"]), sum(c["total"] for c in doc["cells"])))
PY

echo "==> shard-determinism gate (thread vs pooled process backend on the e10 cube)"
rm -rf build/shard-env build/shard-cache
./build/tools/advm init build/shard-env --tests 2 > /dev/null
SHARD_AXES="--derivatives SC88-A,SC88-B,SC88-C,SC88-D --platforms golden-model,hdl-rtl"
# Exit codes are informational here (un-ported derivatives legitimately
# fail their cells); the gate is that both backends fail *identically*.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --format json > build/shard-thread.json || true
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --format json > build/shard-process.json || true
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --format json > build/shard-process-warm.json || true
python3 - build/shard-thread.json build/shard-process.json \
  build/shard-process-warm.json <<'PY'
import json, sys
thread, process, warm = (json.load(open(p)) for p in sys.argv[1:4])
assert process["backend"] == "process" and process["shards"] == 4, process
roll_thread = json.dumps(thread["rollup"], sort_keys=True)
roll_process = json.dumps(process["rollup"], sort_keys=True)
roll_warm = json.dumps(warm["rollup"], sort_keys=True)
assert roll_thread == roll_process, "thread vs process roll-up mismatch"
assert roll_thread == roll_warm, "warm-cache roll-up mismatch"
digests = [c["outcome_digest"] for c in thread["rollup"]]
assert digests == [c["outcome_digest"] for c in process["rollup"]]
hits = sum(c["cache"]["persistent_hits"] for c in warm["cells"])
assert hits > 0, "second cold-process run had no persistent-cache hits"
# Pooled dispatch: 4 resident workers serve the 8-cell cube — every
# worker sees at least one request, the 8 requests amortize the 4
# spawns (reuse > 0), and --jobs 8 is divided 2-per-worker, never 8x4.
workers = process["workers"]
assert len(workers) == 4, workers
assert all(w["requests"] >= 1 for w in workers), workers
assert sum(w["cells"] for w in workers) == len(process["cells"]), workers
assert process["worker_reuse"] > 0, process["worker_reuse"]
assert process["jobs_per_worker"] == 2, process["jobs_per_worker"]
assert "workers" not in thread, "thread backend must not report a pool"
print("shard determinism ok: %d cells byte-identical across backends, "
      "%d persistent-cache hits on the warm rerun, worker reuse %d" %
      (len(digests), hits, process["worker_reuse"]))
PY

echo "==> -Werror hygiene build"
cmake --preset werror
cmake --build build-werror -j

if [[ "${ADVM_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "==> bench harnesses (BENCH_*.json)"
  cmake --build build -t benches -j
  mkdir -p build/bench-json
  export ADVM_BENCH_JSON_DIR="$PWD/build/bench-json"
  # Table-based experiment harnesses; e9 (google-benchmark) reports its own
  # JSON natively when wanted and is too slow for a default CI lap.
  for bench in ablation e1_structure e2_spec_change e3_wrapper e4_platforms \
               e5_devtime e6_porting e7_random e8_labels e10_matrix; do
    "./build/bench/bench_${bench}" > "build/bench-json/bench_${bench}.log"
  done
  echo "bench records: $(ls "$ADVM_BENCH_JSON_DIR"/BENCH_*.json | wc -l) files in build/bench-json/"

  echo "==> perf trend gate (fails on >${ADVM_TREND_MAX_DROP:-15}% throughput drop)"
  # History lives outside bench-json so wiping the record dir does not
  # lose the baseline; consecutive CI laps diff against each other.
  python3 tools/bench_trend.py build/bench-json \
    --history build/bench-trend-history.jsonl \
    --max-drop "${ADVM_TREND_MAX_DROP:-15}"
fi

echo "==> CI green"
