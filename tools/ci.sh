#!/usr/bin/env bash
# CI gate for the ADVM tree.
#
#   1. tier-1: the exact ROADMAP verify command (configure, build, ctest).
#   2. hygiene: a -Werror configure preset must compile warning-clean.
#   3. perf:   build the bench harnesses and record BENCH_*.json under
#              bench/records/ — a *committed* directory, unlike build/ —
#              so the perf trajectory of consecutive revisions actually
#              survives in git history (skippable with ADVM_CI_SKIP_BENCH=1
#              for quick gates).
#
# Run from anywhere: the script cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1 verify"
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
cd ..

echo "==> JSON report contract (advm matrix --format json)"
rm -rf build/json-contract-env
./build/tools/advm init build/json-contract-env --tests 2 > /dev/null
./build/tools/advm matrix build/json-contract-env \
  --derivatives SC88-A,SC88-B --platforms golden-model \
  --format json > build/json-contract.json
python3 - build/json-contract.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True, doc
assert doc["verb"] == "matrix", doc["verb"]
assert doc["backend"] == "thread", doc["backend"]
assert doc["shards"] == 1, doc["shards"]
assert doc["all_passed"] is True, "matrix not green"
assert len(doc["cells"]) == 2, len(doc["cells"])
assert len(doc["rollup"]) == len(doc["cells"])
for cell in doc["cells"]:
    for key in ("derivative", "platform", "records", "passed", "total",
                "build_failures", "all_passed", "outcome_digest", "cache"):
        assert key in cell, "missing key " + key
    assert cell["total"] == len(cell["records"]) > 0
    assert len(cell["outcome_digest"]) == 16
    for key in ("hits", "misses", "bytes", "evictions", "persistent_hits"):
        assert key in cell["cache"], "missing cache key " + key
for entry in doc["rollup"]:
    for key in ("derivative", "platform", "passed", "total",
                "build_failures", "outcome_digest"):
        assert key in entry, "missing rollup key " + key
print("json contract ok: %d cells, %d records" %
      (len(doc["cells"]), sum(c["total"] for c in doc["cells"])))
PY

echo "==> lint gate (advm lint static analyzer + --lint pre-run gate)"
# The generated corpus must be lint-clean (the analyzer's zero-false-
# positive contract), a seeded defect must surface as a typed finding and
# trip the --lint gate, and the gated run on the clean tree must pass.
./build/tools/advm lint build/json-contract-env
./build/tools/advm run build/json-contract-env --lint > /dev/null
rm -rf build/lint-env
cp -r build/json-contract-env build/lint-env
printf '.INCLUDE Globals.inc\n_main:\n MOV d1, d3\n CALL Base_Report_Pass\n' \
  > build/lint-env/MEM_MODULE/TEST_MEMORY_000/test.asm
if ./build/tools/advm lint build/lint-env --format json > build/lint.json; then
  echo "lint exited 0 on a seeded defect" >&2
  exit 1
fi
if ./build/tools/advm run build/lint-env --lint > /dev/null; then
  echo "--lint gate let a dirty tree run" >&2
  exit 1
fi
python3 - build/lint.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True and doc["verb"] == "lint", doc
assert doc["clean"] is False and doc["count"] == 1, doc
assert doc["by_code"] == {"advm.lint-undef-reg": 1}, doc["by_code"]
f = doc["findings"][0]
for key in ("code", "environment", "test", "file", "address", "symbol",
            "detail"):
    assert key in f, "missing finding key " + key
assert f["environment"] == "MEM_MODULE" and f["symbol"] == "_main", f
print("lint gate ok: clean corpus clean, seeded defect caught as %s"
      % f["code"])
PY

echo "==> shard-determinism gate (thread vs pooled process backend on the e10 cube)"
rm -rf build/shard-env build/shard-cache
./build/tools/advm init build/shard-env --tests 2 > /dev/null
SHARD_AXES="--derivatives SC88-A,SC88-B,SC88-C,SC88-D --platforms golden-model,hdl-rtl"
# Exit codes are informational here (un-ported derivatives legitimately
# fail their cells); the gate is that both backends fail *identically*.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --format json > build/shard-thread.json || true
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --format json > build/shard-process.json || true
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --format json > build/shard-process-warm.json || true
# Fourth lap: the cost model is warm now, so force every cell under the
# batching threshold and prove the multi-cell request path merges to the
# same bytes as everything above.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --batch-threshold 1000000 \
  --format json > build/shard-process-batched.json || true
python3 - build/shard-thread.json build/shard-process.json \
  build/shard-process-warm.json build/shard-process-batched.json <<'PY'
import json, sys
thread, process, warm, batched = (json.load(open(p)) for p in sys.argv[1:5])
assert process["backend"] == "process" and process["shards"] == 4, process
roll_thread = json.dumps(thread["rollup"], sort_keys=True)
roll_process = json.dumps(process["rollup"], sort_keys=True)
roll_warm = json.dumps(warm["rollup"], sort_keys=True)
roll_batched = json.dumps(batched["rollup"], sort_keys=True)
assert roll_thread == roll_process, "thread vs process roll-up mismatch"
assert roll_thread == roll_warm, "warm-cache roll-up mismatch"
assert roll_thread == roll_batched, "batched-request roll-up mismatch"
digests = [c["outcome_digest"] for c in thread["rollup"]]
assert digests == [c["outcome_digest"] for c in process["rollup"]]
hits = sum(c["cache"]["persistent_hits"] for c in warm["cells"])
assert hits > 0, "second cold-process run had no persistent-cache hits"
# Pooled dispatch: 4 resident workers serve the 8-cell cube — every
# worker sees at least one request, the 8 requests amortize the 4
# spawns (reuse > 0), and --jobs 8 is divided 2-per-worker, never 8x4.
workers = process["workers"]
assert len(workers) == 4, workers
assert all(w["requests"] >= 1 for w in workers), workers
assert sum(w["cells"] for w in workers) == len(process["cells"]), workers
assert process["worker_reuse"] > 0, process["worker_reuse"]
assert process["jobs_per_worker"] == 2, process["jobs_per_worker"]
assert "workers" not in thread, "thread backend must not report a pool"
# Cost model: the first process lap runs against an empty cache dir, so
# dispatch seeds from test-count estimates and every cell's measured
# wall-clock gets recorded; the warm lap must then seed from those
# measurements. Both counters are process-backend-only.
cold_cm = process["cost_model"]
assert cold_cm["source"] == "estimate", cold_cm
assert cold_cm["seeded_cells"] == 0, cold_cm
assert cold_cm["recorded"] == len(process["cells"]), cold_cm
warm_cm = warm["cost_model"]
assert warm_cm["source"] == "measured", warm_cm
assert warm_cm["seeded_cells"] == len(warm["cells"]), warm_cm
assert "cost_model" not in thread, "thread backend must not report a cost model"
assert "batched_requests" not in thread, thread.keys()
# Forced batching: with every estimate under the threshold, tiny cells
# coalesce into multi-cell requests — fewer round trips than cells, at
# least one batched request, and (asserted above) identical roll-up bytes.
assert batched["cost_model"]["source"] == "measured", batched["cost_model"]
assert batched["batched_requests"] > 0, batched["batched_requests"]
batched_reqs = sum(w["requests"] for w in batched["workers"])
assert batched_reqs < len(batched["cells"]), (batched_reqs, len(batched["cells"]))
print("shard determinism ok: %d cells byte-identical across backends, "
      "%d persistent-cache hits on the warm rerun, worker reuse %d, "
      "warm cost model seeded %d cells, %d batched request(s)" %
      (len(digests), hits, process["worker_reuse"],
       warm_cm["seeded_cells"], batched["batched_requests"]))
PY

echo "==> chaos gate (fault-injected process backend vs the thread reference)"
# Reuses the e10 cube from the shard gate above. Faults are injected with
# the hidden --fault-plan serve-loop seam; the gate is that a lap that
# loses workers still produces the same roll-up bytes as the undisturbed
# thread lap — recovery must be invisible in the report, visible only in
# the fault counters.
#
# Lap 1: worker 0 is SIGKILLed on its first request, no respawn budget —
# its cells must requeue onto the survivors.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --fault-plan "0:crash@1" --max-respawns 0 --request-timeout-ms 120000 \
  --format json > build/chaos-crash.json || true
# Lap 2: every incarnation dies on its first request and nothing may
# respawn — the orchestrator must degrade to the in-process backend.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --backend process --shards 4 --jobs 8 --cache-dir build/shard-cache \
  --fault-plan "*:crash@1" --max-respawns 0 \
  --format json > build/chaos-degraded.json || true
python3 - build/shard-thread.json build/chaos-crash.json \
  build/chaos-degraded.json <<'PY'
import json, sys
thread, crash, degraded = (json.load(open(p)) for p in sys.argv[1:4])
roll_thread = json.dumps(thread["rollup"], sort_keys=True)
assert roll_thread == json.dumps(crash["rollup"], sort_keys=True), \
    "crash-lap roll-up diverged from the thread reference"
assert roll_thread == json.dumps(degraded["rollup"], sort_keys=True), \
    "degraded-lap roll-up diverged from the thread reference"
fault = crash["fault"]
assert fault["retries"] >= 1, fault
assert fault["requeued_cells"] >= 1, fault
assert fault["respawns"] == 0, fault
assert fault["quarantined_cells"] == 0, fault
assert fault["degraded"] is False, fault
assert crash["request_timeout_ms"] == 120000, crash["request_timeout_ms"]
assert degraded["fault"]["degraded"] is True, degraded["fault"]
assert degraded["fault"]["quarantined_cells"] == 0, degraded["fault"]
assert "fault" not in thread, "thread backend must not report fault stats"
print("chaos ok: crash lap requeued %d cell(s) over %d retri(es), "
      "all-dead lap degraded cleanly, roll-ups byte-identical" %
      (fault["requeued_cells"], fault["retries"]))
PY

echo "==> quarantine gate (a poisoned cell is a typed outcome, not a failed run)"
# A green 2-cell cube where cell 1 kills every worker that touches it:
# the run must finish with a non-zero exit (a quarantined cell is a
# failure), exactly one poisoned cell, and the other cell intact.
if ./build/tools/advm matrix build/json-contract-env \
  --derivatives SC88-A,SC88-B --platforms golden-model \
  --backend process --shards 2 \
  --fault-plan "*:crash@cell=1" \
  --format json > build/chaos-poison.json; then
  echo "quarantine lap exited 0 despite a poisoned cell" >&2
  exit 1
fi
python3 - build/chaos-poison.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True, "the run itself must complete"
assert doc["all_passed"] is False, "a poisoned cell cannot count as green"
fault = doc["fault"]
assert fault["quarantined_cells"] == 1, fault
poisoned = [c for c in doc["cells"]
            if any(r["test"] == "advm.exec-cell-poisoned"
                   for r in c["records"])]
assert len(poisoned) == 1, "expected exactly one poisoned cell"
assert poisoned[0]["derivative"] == "SC88-B", poisoned[0]["derivative"]
healthy = [c for c in doc["cells"] if c is not poisoned[0]]
assert all(c["all_passed"] for c in healthy), "healthy cells were damaged"
print("quarantine ok: cell (%s, %s) poisoned after %d respawn(s), "
      "neighbours green" % (poisoned[0]["derivative"],
                            poisoned[0]["platform"], fault["respawns"]))
PY

echo "==> serve daemon gate (warm resident session vs cold CLI)"
# One daemon owns a warm Session (process pool + persistent cache + cost
# model); every lap below is a thin `--attach` client. The gate pins three
# things: (a) attached roll-ups are byte-identical to the local thread
# reference, (b) the *second* attached lap actually runs warm
# (persistent-cache hits, pooled-worker reuse, measured cost model — all
# resident state, no disk round trip between laps), and (c) the daemon
# drains cleanly on --stop. Wall-clock for a cold CLI lap vs a warm
# attached lap is recorded as a bench datapoint for the trend gate.
rm -rf build/serve-cache build/serve-cold-cache
rm -f build/serve.sock
./build/tools/advm serve --socket build/serve.sock \
  --backend process --shards 4 --jobs 8 --cache-dir build/serve-cache \
  2> build/serve-daemon.log &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  ./build/tools/advm serve --stats --socket build/serve.sock \
    > /dev/null 2>&1 && break
  sleep 0.1
done
# Cold reference: a standalone CLI lap pays session construction, worker
# spawns, and an empty cost model every time (fresh cache dir per lap).
# Exit codes are informational, as in the shard gate: the e10 cube has
# legitimately failing cells.
COLD_NS=""
for _ in 1 2; do
  rm -rf build/serve-cold-cache
  t0=$(date +%s%N)
  ./build/tools/advm matrix build/shard-env $SHARD_AXES \
    --backend process --shards 4 --jobs 8 \
    --cache-dir build/serve-cold-cache \
    --format json > build/serve-cold.json || true
  COLD_NS="$COLD_NS $(( $(date +%s%N) - t0 ))"
done
# Attached laps: lap 1 warms the resident session, later laps ride it.
./build/tools/advm matrix build/shard-env $SHARD_AXES \
  --attach build/serve.sock --format json > build/serve-lap1.json || true
WARM_NS=""
for _ in 1 2 3; do
  t0=$(date +%s%N)
  ./build/tools/advm matrix build/shard-env $SHARD_AXES \
    --attach build/serve.sock --format json > build/serve-lap2.json || true
  WARM_NS="$WARM_NS $(( $(date +%s%N) - t0 ))"
done
./build/tools/advm serve --stats --socket build/serve.sock \
  --format json > build/serve-stats.json
python3 - build/serve-lap1.json build/serve-lap2.json build/serve-cold.json \
  build/shard-thread.json build/serve-stats.json "$COLD_NS" "$WARM_NS" <<'PY'
import json, sys
lap1, lap2, cold, thread, stats = (json.load(open(p)) for p in sys.argv[1:6])
cold_ms = min(int(n) for n in sys.argv[6].split()) / 1e6
warm_ms = min(int(n) for n in sys.argv[7].split()) / 1e6
roll = lambda doc: json.dumps(doc["rollup"], sort_keys=True)
assert roll(lap1) == roll(thread), "attached lap-1 roll-up diverged"
assert roll(lap2) == roll(thread), "warm attached roll-up diverged"
assert roll(cold) == roll(thread), "cold CLI roll-up diverged"
# The daemon's session config governs attached execution: the client sent
# no backend flags, yet the document reports the resident process pool.
assert lap1["backend"] == "process" and lap1["shards"] == 4, lap1["backend"]
# Lap 1 hits an empty cost model (estimates); lap 2 must seed from the
# measurements lap 1 recorded — in memory, the daemon never re-reads them.
assert lap1["cost_model"]["source"] == "estimate", lap1["cost_model"]
assert lap2["cost_model"]["source"] == "measured", lap2["cost_model"]
assert lap2["worker_reuse"] > 0, lap2["worker_reuse"]
hits = sum(c["cache"]["persistent_hits"] for c in lap2["cells"])
assert hits > 0, "warm attached lap had no persistent-cache hits"
assert stats["ok"] is True and stats["verb"] == "serve", stats
assert stats["clients_served"] >= 4, stats["clients_served"]
assert stats["requests"].get("matrix", 0) >= 4, stats["requests"]
assert stats["trees"] >= 1, stats["trees"]
assert stats["clients_lost"] == 0, stats["clients_lost"]
tests = sum(c["total"] for c in lap2["cells"])
record = {
    "bench": "serve_daemon",
    "table": "cold-cli vs warm-daemon (e10 cube, process backend)",
    "headers": ["lap", "tests run", "wall ms", "tests/s"],
    "rows": [
        ["cold-cli", str(tests), "%.4g" % cold_ms,
         "%.4g" % (tests / (cold_ms / 1e3))],
        ["warm-daemon", str(tests), "%.4g" % warm_ms,
         "%.4g" % (tests / (warm_ms / 1e3))],
    ],
}
with open("bench/records/BENCH_serve_daemon.json", "w") as fh:
    fh.write(json.dumps(record) + "\n")
print("serve daemon ok: roll-ups byte-identical, warm lap %d persistent "
      "hits / reuse %d, cold %.0fms vs warm %.0fms" %
      (hits, lap2["worker_reuse"], cold_ms, warm_ms))
PY
./build/tools/advm serve --stop --socket build/serve.sock > /dev/null
wait "$SERVE_PID"
trap - EXIT
if [[ -e build/serve.sock ]]; then
  echo "daemon exited without unlinking its socket" >&2
  exit 1
fi

echo "==> sim-core lap (decoded-cache speedup gate + backend roll-up identity)"
# bench_sim_core exits non-zero unless the decoded arm is bit-identical to
# the plain interpreter on all four kernels AND holds a >= 3x instr/s
# advantage on the compute kernel. Its datapoint lands in bench/records/ so
# the >15% trend gate below covers the sim core's floor too. The roll-up
# re-check reuses the shard-gate artifacts: a sim-core change must be
# invisible in the e10 cube under both backends.
cmake --build build -t bench_sim_core -j
mkdir -p bench/records build/bench-logs
ADVM_BENCH_JSON_DIR="$PWD/bench/records" ./build/bench/bench_sim_core \
  > build/bench-logs/bench_sim_core.log
tail -2 build/bench-logs/bench_sim_core.log
python3 - build/shard-thread.json build/shard-process.json <<'PY'
import json, sys
thread, process = (json.load(open(p)) for p in sys.argv[1:3])
assert json.dumps(thread["rollup"], sort_keys=True) == \
       json.dumps(process["rollup"], sort_keys=True), \
    "e10 roll-up diverged between thread and process backends"
print("sim-core lap ok: e10 roll-up byte-identical across backends")
PY

echo "==> -Werror hygiene build"
cmake --preset werror
cmake --build build-werror -j

if [[ "${ADVM_CI_SKIP_SAN:-0}" != "1" ]]; then
  echo "==> ASan+UBSan lane (tier-1 ctest, instrumented end to end)"
  # The e2e suites spawn the real CLI, so the whole tree — libraries, CLI,
  # daemon, tests — runs instrumented. halt_on_error keeps UBSan fatal.
  cmake --preset asan
  cmake --build build-asan -j
  (cd build-asan && \
   UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
   ctest -L tier1 --output-on-failure -j)

  echo "==> TSan lane (concurrency suites: worker pools, serve daemon)"
  # Scoped to the suites that actually exercise threads — WorkerPool
  # fan-out, the daemon's executor/poll loops, parallel regression — a
  # full TSan ctest lap would mostly re-run single-threaded code slower.
  cmake --preset tsan
  cmake --build build-tsan -j \
    -t exec_test -t serve_test -t regression_parallel_test
  for suite in exec_test serve_test regression_parallel_test; do
    "./build-tsan/tests/${suite}"
  done
else
  echo "==> sanitizer lanes skipped (ADVM_CI_SKIP_SAN=1)"
fi

if [[ "${ADVM_CI_SKIP_TIDY:-0}" != "1" ]] && command -v clang-tidy > /dev/null
then
  echo "==> clang-tidy gate (src/, profile in .clang-tidy)"
  # compile_commands.json comes from the default configure; tidy findings
  # are errors (WarningsAsErrors in .clang-tidy), so a regression fails CI.
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  find src -name '*.cpp' -print0 | xargs -0 -P "$(nproc)" -n 8 \
    clang-tidy -p build --quiet
else
  echo "==> clang-tidy gate skipped (binary missing or ADVM_CI_SKIP_TIDY=1)"
fi

if [[ "${ADVM_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "==> bench harnesses (BENCH_*.json)"
  cmake --build build -t benches -j
  # Records land in bench/records/ — tracked by git, NOT under build/ and
  # NOT matched by the root-level /BENCH_*.json ignore — so the trajectory
  # the trend gate diffs against survives clean checkouts and build wipes.
  # (The old build/bench-json destination was wiped with build/, which left
  # the >N% drop gate comparing against an empty history: vacuously green.)
  mkdir -p bench/records build/bench-logs
  export ADVM_BENCH_JSON_DIR="$PWD/bench/records"
  # Table-based experiment harnesses; e9 (google-benchmark) reports its own
  # JSON natively when wanted and is too slow for a default CI lap.
  for bench in ablation e1_structure e2_spec_change e3_wrapper e4_platforms \
               e5_devtime e6_porting e7_random e8_labels e10_matrix; do
    "./build/bench/bench_${bench}" > "build/bench-logs/bench_${bench}.log"
  done
  echo "bench records: $(ls "$ADVM_BENCH_JSON_DIR"/BENCH_*.json | wc -l) files in bench/records/"

  echo "==> perf trend gate (fails on >${ADVM_TREND_MAX_DROP:-15}% throughput drop)"
  # The history file sits next to the records and is committed with them;
  # consecutive CI laps (= consecutive revisions) diff against each other.
  python3 tools/bench_trend.py bench/records \
    --history bench/records/bench-trend-history.jsonl \
    --max-drop "${ADVM_TREND_MAX_DROP:-15}"
fi

echo "==> CI green"
